// Package metro simulates one city-scale CellFi deployment — thousands
// of access points and 100k+ UEs in a single world — fast enough to
// outrun the wall clock on one core.
//
// The epoch simulator in internal/netsim keeps per-object structs and
// dense [cells][clients] budget matrices; at 2,000 APs x 100k UEs that
// matrix alone is gigabytes and every epoch walks it. This package
// restructures the same physics for scale:
//
//   - Per-UE state lives in dense SoA arrays (positions, serving-AP
//     index, queue/delivered counters, last CQI), so the per-epoch
//     sweep is cache-linear instead of pointer-chasing.
//   - Each UE carries a bounded-degree adjacency row (fixed stride,
//     CSR-style nbrAP/nbrRxMW slabs) holding only the APs inside the
//     interference-significance radius, found through the geo.Grid
//     spatial index; mean rx powers are precomputed in milliwatts so
//     the SINR inner loop is one propagation.Fading.GainLinear multiply
//     per interferer — no dB round trips.
//   - Whole-run metrics go to bounded-memory streaming aggregates
//     (stats.StreamStat, stats.QuantileSketch) instead of retained
//     samples.
//
// Determinism mirrors the rest of the repo: with UseSpatialIndex off,
// neighbor rows are rebuilt by brute-force scans truncated with the
// identical inclusive r^2 predicate, visiting APs in ascending index
// order — byte-identical results, used by the equivalence tests.
package metro

import (
	"math"
	"math/rand"

	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/phy"
	"cellfi/internal/propagation"
	"cellfi/internal/stats"
)

// Config sizes a metro world.
type Config struct {
	Seed int64
	// NAPs / NUEs are the deployment scale.
	NAPs, NUEs int
	// AreaW / AreaH is the city rectangle in metres.
	AreaW, AreaH float64
	// APSpacingM is the minimum AP separation (jittered placement).
	APSpacingM float64
	// RadiusM is the interference-significance radius: APs farther than
	// this from a UE contribute nothing (see
	// propagation.Model.InterferenceRadius for the principled choice).
	RadiusM float64
	// UseSpatialIndex resolves neighborhoods through geo.Grid queries;
	// off, the same truncation runs as a brute-force scan (reference
	// mode for equivalence tests — quadratic, small worlds only).
	UseSpatialIndex bool
	// MaxNeighbors bounds each UE's adjacency row. Overflow keeps the
	// lowest AP indices (both modes enumerate ascending, so the kept
	// set is mode-independent).
	MaxNeighbors int
	// APPowerDBm / noise figure follow the paper's Section 6.3.4 setup.
	APPowerDBm float64
	// DayEpochs is the length of the compressed diurnal cycle driving
	// the attach ramp (1 s epochs).
	DayEpochs int
	// MinLoadFrac / MaxLoadFrac bound the diurnal attached fraction.
	MinLoadFrac, MaxLoadFrac float64
	// MoveFraction of attached UEs takes a random-waypoint step each
	// epoch at SpeedMps.
	MoveFraction float64
	SpeedMps     float64
}

// DefaultCity returns the headline scenario: 2,000 APs and 100k UEs on
// a 14 km x 7 km city, which must simulate faster than real time on a
// single core (the BENCH_city.json gate).
func DefaultCity(seed int64) Config {
	return Config{
		Seed:            seed,
		NAPs:            2000,
		NUEs:            100_000,
		AreaW:           14_000,
		AreaH:           7_000,
		APSpacingM:      220,
		RadiusM:         800,
		MaxNeighbors:    32,
		APPowerDBm:      30,
		DayEpochs:       240,
		MinLoadFrac:     0.25,
		MaxLoadFrac:     0.95,
		MoveFraction:    0.02,
		SpeedMps:        15,
		UseSpatialIndex: true,
	}
}

// World is one instantiated city. All per-UE state is SoA.
type World struct {
	Cfg   Config
	model *propagation.Model
	fade  *propagation.Fading

	// Access points (static).
	apX, apY []float64
	apLoad   []int32 // attached UEs per AP
	grid     *geo.Grid

	// UE state, dense SoA.
	ueX, ueY     []float64
	ueWpX, ueWpY []float64 // random-waypoint targets
	ueCell       []int32   // serving AP, -1 when out of coverage
	ueAttached   []bool
	ueQueued     []int64
	ueDelivered  []int64
	ueCQI        []uint8

	// Bounded-degree adjacency, fixed stride Cfg.MaxNeighbors:
	// row u occupies [u*K, u*K+nbrN[u]). nbrRxMW is the mean rx power
	// of that AP at the UE in milliwatts (path loss + shadowing, no
	// fast fading); nbrLink caches the fading LinkID.
	nbrAP      []int32
	nbrRxMW    []float64
	nbrLink    []uint64
	nbrN       []uint16
	nbrScratch []int32

	rng     *rand.Rand
	epoch   int64
	noiseMW float64
	// rateBps[cqi] is the one-subchannel downlink rate.
	rateBps [16]float64
	sc      int // the evaluated subchannel

	// Streaming aggregates over the whole run (bounded memory).
	Throughput    stats.StreamStat      // per-UE Mbps, one sample per attached UE per epoch
	ThroughputQ   *stats.QuantileSketch // same stream, quantiles
	Attached      stats.StreamStat      // attached count per epoch
	attachSeq     []int32               // diurnal attach order (permutation)
	attachedCount int32
}

// New builds the world: AP placement, UE scatter, adjacency rows.
func New(cfg Config) *World {
	if cfg.MaxNeighbors <= 0 {
		cfg.MaxNeighbors = 32
	}
	w := &World{
		Cfg:         cfg,
		model:       propagation.DefaultUrban(cfg.Seed),
		fade:        propagation.NewFading(cfg.Seed + 1),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		ThroughputQ: stats.NewQuantileSketch(0),
	}
	area := geo.Rect{MinX: 0, MinY: 0, MaxX: cfg.AreaW, MaxY: cfg.AreaH}
	aps := geo.MinSpacedPoints(w.rng, area, cfg.NAPs, cfg.APSpacingM)
	w.apX = make([]float64, cfg.NAPs)
	w.apY = make([]float64, cfg.NAPs)
	w.apLoad = make([]int32, cfg.NAPs)
	for i, p := range aps {
		w.apX[i], w.apY[i] = p.X, p.Y
	}
	if cfg.UseSpatialIndex {
		w.grid = geo.NewGrid(area, cfg.RadiusM)
		for i, p := range aps {
			w.grid.Insert(int32(i), p)
		}
	}

	n := cfg.NUEs
	w.ueX = make([]float64, n)
	w.ueY = make([]float64, n)
	w.ueWpX = make([]float64, n)
	w.ueWpY = make([]float64, n)
	w.ueCell = make([]int32, n)
	w.ueAttached = make([]bool, n)
	w.ueQueued = make([]int64, n)
	w.ueDelivered = make([]int64, n)
	w.ueCQI = make([]uint8, n)
	w.nbrAP = make([]int32, n*cfg.MaxNeighbors)
	w.nbrRxMW = make([]float64, n*cfg.MaxNeighbors)
	w.nbrLink = make([]uint64, n*cfg.MaxNeighbors)
	w.nbrN = make([]uint16, n)
	for u := 0; u < n; u++ {
		p := area.RandomPoint(w.rng)
		q := area.RandomPoint(w.rng)
		w.ueX[u], w.ueY[u] = p.X, p.Y
		w.ueWpX[u], w.ueWpY[u] = q.X, q.Y
		w.rebuildRow(u)
	}
	w.attachSeq = make([]int32, n)
	for i, v := range w.rng.Perm(n) {
		w.attachSeq[i] = int32(v)
	}

	bw, tdd := lte.BW5MHz, lte.TDDConfig4
	w.sc = 0
	for cqi := 0; cqi <= 15; cqi++ {
		w.rateBps[cqi] = lte.SubchannelRateBps(bw, tdd, w.sc, cqi)
	}
	w.noiseMW = propagation.DBmToMW(propagation.NoiseDBm(bw.SubchannelHz(w.sc), 7))
	return w
}

// rebuildRow recomputes UE u's adjacency row and serving AP from its
// current position — the only place link budgets are evaluated, run at
// construction and after a mobility step. Both enumeration modes visit
// APs in ascending index order under the same inclusive r^2 predicate.
func (w *World) rebuildRow(u int) {
	k := w.Cfg.MaxNeighbors
	base := u * k
	r2 := w.Cfg.RadiusM * w.Cfg.RadiusM
	pos := geo.Point{X: w.ueX[u], Y: w.ueY[u]}
	cnt := 0
	consider := func(a int32) {
		if cnt >= k {
			return // bounded degree: keep the lowest indices
		}
		ap := geo.Point{X: w.apX[a], Y: w.apY[a]}
		loss := w.model.LinkLossDB(ap, pos)
		w.nbrAP[base+cnt] = a
		w.nbrRxMW[base+cnt] = propagation.DBmToMW(w.Cfg.APPowerDBm - loss)
		w.nbrLink[base+cnt] = propagation.LinkID(int(a), w.Cfg.NAPs+u)
		cnt++
	}
	if w.grid != nil {
		w.nbrScratch = w.grid.AppendWithin(w.nbrScratch[:0], pos, w.Cfg.RadiusM)
		for _, a := range w.nbrScratch {
			consider(a)
		}
	} else {
		for a := range w.apX {
			dx, dy := w.apX[a]-pos.X, w.apY[a]-pos.Y
			if dx*dx+dy*dy <= r2 {
				consider(int32(a))
			}
		}
	}
	w.nbrN[u] = uint16(cnt)

	// Serving AP: strongest mean rx in the row (ascending, strict >,
	// so ties keep the lowest index in both modes).
	oldCell := w.ueCell[u]
	best, bestRx := int32(-1), 0.0
	for i := 0; i < cnt; i++ {
		if w.nbrRxMW[base+i] > bestRx {
			best, bestRx = w.nbrAP[base+i], w.nbrRxMW[base+i]
		}
	}
	w.ueCell[u] = best
	if w.ueAttached[u] && oldCell != best {
		if oldCell >= 0 {
			w.apLoad[oldCell]--
		}
		if best >= 0 {
			w.apLoad[best]++
		}
	}
}

// loadFrac returns the diurnal attached fraction for an epoch: a raised
// cosine over the compressed day.
func (w *World) loadFrac(epoch int64) float64 {
	cfg := w.Cfg
	phase := 2 * math.Pi * float64(epoch%int64(cfg.DayEpochs)) / float64(cfg.DayEpochs)
	return cfg.MinLoadFrac + (cfg.MaxLoadFrac-cfg.MinLoadFrac)*0.5*(1-math.Cos(phase))
}

// Step advances one 1-second epoch: diurnal attach/detach, mobility,
// then the cache-linear SINR/throughput sweep.
func (w *World) Step() {
	cfg := &w.Cfg
	w.stepAttach()
	w.stepMobility()

	tMS := w.epoch * 1000
	k := cfg.MaxNeighbors
	for u := 0; u < cfg.NUEs; u++ {
		if !w.ueAttached[u] {
			continue
		}
		serving := w.ueCell[u]
		if serving < 0 {
			w.ueCQI[u] = 0
			w.Throughput.Add(0)
			w.ThroughputQ.Add(0)
			continue
		}
		base := u * k
		n := int(w.nbrN[u])
		var sig float64
		den := w.noiseMW
		for i := 0; i < n; i++ {
			g := w.fade.GainLinear(w.nbrLink[base+i], w.sc, tMS)
			p := w.nbrRxMW[base+i] * g
			if w.nbrAP[base+i] == serving {
				sig = p
			} else {
				den += p
			}
		}
		sinrDB := 10 * math.Log10(sig/den)
		cqi := phy.LTECQIFromSINR(sinrDB)
		w.ueCQI[u] = uint8(cqi)
		rate := w.rateBps[cqi] / float64(w.apLoad[serving])
		served := int64(rate)
		if served > w.ueQueued[u] {
			served = w.ueQueued[u]
		}
		w.ueQueued[u] -= served
		w.ueDelivered[u] += served
		mbps := float64(served) / 1e6
		w.Throughput.Add(mbps)
		w.ThroughputQ.Add(mbps)
	}
	w.epoch++
}

// stepAttach moves the attached population toward the diurnal target.
// Attach order is a fixed seed-derived permutation, so the attached set
// at any epoch is deterministic.
func (w *World) stepAttach() {
	target := int(w.loadFrac(w.epoch) * float64(w.Cfg.NUEs))
	attached := int(w.attachedCount)
	for attached < target {
		u := w.attachSeq[attached]
		w.ueAttached[u] = true
		w.ueQueued[u] = 1 << 40 // backlogged
		if w.ueCell[u] >= 0 {
			w.apLoad[w.ueCell[u]]++
		}
		attached++
	}
	for attached > target {
		attached--
		u := w.attachSeq[attached]
		w.ueAttached[u] = false
		if w.ueCell[u] >= 0 {
			w.apLoad[w.ueCell[u]]--
		}
	}
	w.attachedCount = int32(attached)
	w.Attached.Add(float64(attached))
}

// stepMobility advances random-waypoint walks for a deterministic
// subset of attached UEs and rebuilds their adjacency rows (grid-backed
// membership update + partial link-budget refresh — the mobility half
// of the invalidation contract).
func (w *World) stepMobility() {
	cfg := &w.Cfg
	if cfg.MoveFraction <= 0 {
		return
	}
	// A rotating deterministic cohort moves each epoch: identical in
	// both neighbor-enumeration modes, no per-UE RNG draw in the sweep.
	stride := int64(1)
	if cfg.MoveFraction < 1 {
		stride = int64(1 / cfg.MoveFraction)
	}
	for u := int(w.epoch % stride); u < cfg.NUEs; u += int(stride) {
		if !w.ueAttached[u] {
			continue
		}
		dx, dy := w.ueWpX[u]-w.ueX[u], w.ueWpY[u]-w.ueY[u]
		d := math.Sqrt(dx*dx + dy*dy)
		step := cfg.SpeedMps * float64(stride) // cohort moves every stride epochs
		if d <= step {
			w.ueX[u], w.ueY[u] = w.ueWpX[u], w.ueWpY[u]
			w.ueWpX[u] = w.rng.Float64() * cfg.AreaW
			w.ueWpY[u] = w.rng.Float64() * cfg.AreaH
		} else {
			w.ueX[u] += step * dx / d
			w.ueY[u] += step * dy / d
		}
		w.rebuildRow(u)
	}
}

// Run advances the world the given number of epochs.
func (w *World) Run(epochs int) {
	for i := 0; i < epochs; i++ {
		w.Step()
	}
}

// Epoch returns the number of completed epochs (== simulated seconds).
func (w *World) Epoch() int64 { return w.epoch }

// AttachedCount returns the currently attached UE population.
func (w *World) AttachedCount() int { return int(w.attachedCount) }

// DeliveredBits returns total downlink bits delivered so far.
func (w *World) DeliveredBits() int64 {
	var sum int64
	for _, v := range w.ueDelivered {
		sum += v
	}
	return sum
}

// UEState exposes one UE's SoA slots (tests and tooling).
func (w *World) UEState(u int) (x, y float64, cell int32, delivered int64, cqi uint8) {
	return w.ueX[u], w.ueY[u], w.ueCell[u], w.ueDelivered[u], w.ueCQI[u]
}
