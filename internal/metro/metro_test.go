package metro

import (
	"testing"
	"time"
)

// smallCity is a brute-force-tractable world that still has coverage
// holes, handovers and row overflow.
func smallCity(seed int64, indexed bool) Config {
	return Config{
		Seed:            seed,
		NAPs:            60,
		NUEs:            1500,
		AreaW:           2400,
		AreaH:           1600,
		APSpacingM:      150,
		RadiusM:         500,
		UseSpatialIndex: indexed,
		MaxNeighbors:    16,
		APPowerDBm:      30,
		DayEpochs:       30,
		MinLoadFrac:     0.2,
		MaxLoadFrac:     0.9,
		MoveFraction:    0.1,
		SpeedMps:        20,
	}
}

// TestMetroIndexedEquivalence: the grid-indexed neighbor rows are
// bit-identical to the brute-force truncated scan — every UE's serving
// cell, delivered bits, CQI and the streaming aggregates agree exactly
// across a full diurnal cycle with mobility, over many seeds.
func TestMetroIndexedEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		a := New(smallCity(seed, false))
		b := New(smallCity(seed, true))
		a.Run(45)
		b.Run(45)
		for u := 0; u < a.Cfg.NUEs; u++ {
			ax, ay, ac, ad, aq := a.UEState(u)
			bx, by, bc, bd, bq := b.UEState(u)
			if ax != bx || ay != by || ac != bc || ad != bd || aq != bq {
				t.Fatalf("seed %d UE %d diverges: brute (%v,%v,%d,%d,%d) indexed (%v,%v,%d,%d,%d)",
					seed, u, ax, ay, ac, ad, aq, bx, by, bc, bd, bq)
			}
		}
		if a.Throughput != b.Throughput {
			t.Fatalf("seed %d: throughput stats diverge: %+v vs %+v", seed, a.Throughput, b.Throughput)
		}
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
			if a.ThroughputQ.Quantile(q) != b.ThroughputQ.Quantile(q) {
				t.Fatalf("seed %d q=%v: sketch quantiles diverge", seed, q)
			}
		}
		if a.DeliveredBits() == 0 {
			t.Fatalf("seed %d: vacuous run, nothing delivered", seed)
		}
	}
}

// The attach population must actually follow the diurnal curve: low at
// the day boundary, peaking mid-day.
func TestMetroDiurnalRamp(t *testing.T) {
	w := New(smallCity(3, true))
	day := w.Cfg.DayEpochs
	w.Step()
	low := w.AttachedCount()
	for w.Epoch() < int64(day/2) {
		w.Step()
	}
	high := w.AttachedCount()
	wantLow := int(w.Cfg.MinLoadFrac*float64(w.Cfg.NUEs)) + day
	wantHigh := int(0.9 * w.Cfg.MaxLoadFrac * float64(w.Cfg.NUEs))
	if low > wantLow {
		t.Fatalf("early-day attach %d, want <= %d", low, wantLow)
	}
	if high < wantHigh {
		t.Fatalf("mid-day attach %d, want >= %d", high, wantHigh)
	}
}

// With the attach population frozen and mobility off, the epoch sweep
// is the pure hot path — SoA scan + grid-free fading multiplies — and
// must not allocate once the streaming sketch has seen the value set.
func TestMetroStepZeroAllocs(t *testing.T) {
	cfg := smallCity(5, true)
	cfg.MoveFraction = 0
	cfg.MinLoadFrac, cfg.MaxLoadFrac = 0.6, 0.6
	w := New(cfg)
	w.Run(60) // warm: stable buckets, stable loads
	avg := testing.AllocsPerRun(50, func() { w.Step() })
	if avg != 0 {
		t.Fatalf("metro Step allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

// City-scale smoke: the headline configuration builds and makes
// forward progress. The committed BENCH_city.json artifact (make
// BENCH_city.json) carries the faster-than-real-time gate; this test
// only guards that the scenario functions.
func TestMetroCityScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("city-scale world build is ~1s; skipped in -short")
	}
	cfg := DefaultCity(1)
	start := time.Now()
	w := New(cfg)
	w.Run(3)
	elapsed := time.Since(start)
	if w.AttachedCount() < cfg.NUEs/5 {
		t.Fatalf("only %d of %d UEs attached", w.AttachedCount(), cfg.NUEs)
	}
	if w.DeliveredBits() == 0 {
		t.Fatal("city delivered no traffic")
	}
	t.Logf("built + 3 epochs of %d APs / %d UEs in %v (attached %d, %.1f Gbit delivered)",
		cfg.NAPs, cfg.NUEs, elapsed, w.AttachedCount(), float64(w.DeliveredBits())/1e9)
}

func BenchmarkMetroEpoch(b *testing.B) {
	cfg := DefaultCity(1)
	w := New(cfg)
	w.Run(5) // past the coldest part of the ramp
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
}
