package metro

import (
	"bytes"
	"testing"

	"cellfi/internal/trace"
)

// shardCity is smallCity plus the two hazards the sharded path must
// survive: a mobility cohort that walks UEs across slab boundaries, and
// an incumbent pop-up centered exactly on the K=2/K=8 boundary line
// (x = AreaW/2), so its silenced APs straddle two slabs.
func shardCity(seed int64, shards int) Config {
	cfg := smallCity(seed, true)
	cfg.Shards = shards
	cfg.Incumbents = []IncumbentEvent{
		{Epoch: 6, Duration: 12, X: cfg.AreaW / 2, Y: cfg.AreaH / 2, RadiusM: 450},
		{Epoch: 20, X: cfg.AreaW / 4, Y: cfg.AreaH / 3, RadiusM: 300}, // permanent
	}
	return cfg
}

type shardRunResult struct {
	w       *World
	trace   []byte
	apLoad  []int32
	msgs    int64
	windows int64
}

func runShardCity(t *testing.T, seed int64, shards, epochs int) shardRunResult {
	t.Helper()
	w := New(shardCity(seed, shards))
	defer w.Close()
	var buf bytes.Buffer
	ring := trace.NewRing(256)
	ring.SpillTo(&buf)
	w.SetRecorder(ring)
	w.Run(epochs)
	if err := ring.Flush(); err != nil {
		t.Fatal(err)
	}
	res := shardRunResult{w: w, trace: buf.Bytes(), apLoad: append([]int32(nil), w.apLoad...)}
	if st, ok := w.ShardStats(); ok {
		res.msgs, res.windows = st.Msgs, st.Windows
	}
	return res
}

// TestMetroShardEquivalence is the sharded-execution contract: over 50
// seeds, the direct single-threaded path and cluster runs at 2 and 8
// shards produce byte-identical trace streams, identical per-UE state,
// identical AP load tables and identical delivered-bit totals — with
// boundary-crossing mobility and a shard-boundary incumbent in play.
func TestMetroShardEquivalence(t *testing.T) {
	seeds := int64(50)
	if testing.Short() {
		seeds = 8
	}
	const epochs = 34
	var totalHandoffs int64
	for seed := int64(1); seed <= seeds; seed++ {
		ref := runShardCity(t, seed, 1, epochs)
		if len(ref.trace) == 0 {
			t.Fatal("reference run produced no trace bytes")
		}
		for _, k := range []int{2, 8} {
			got := runShardCity(t, seed, k, epochs)
			if !bytes.Equal(got.trace, ref.trace) {
				t.Fatalf("seed %d K=%d: trace stream (%d bytes) differs from direct run (%d bytes)",
					seed, k, len(got.trace), len(ref.trace))
			}
			for u := 0; u < ref.w.Cfg.NUEs; u++ {
				ax, ay, ac, ad, aq := ref.w.UEState(u)
				bx, by, bc, bd, bq := got.w.UEState(u)
				if ax != bx || ay != by || ac != bc || ad != bd || aq != bq {
					t.Fatalf("seed %d K=%d UE %d diverges: direct (%v,%v,%d,%d,%d) sharded (%v,%v,%d,%d,%d)",
						seed, k, u, ax, ay, ac, ad, aq, bx, by, bc, bd, bq)
				}
			}
			for a := range ref.apLoad {
				if got.apLoad[a] != ref.apLoad[a] {
					t.Fatalf("seed %d K=%d: AP %d load %d, direct %d", seed, k, a, got.apLoad[a], ref.apLoad[a])
				}
			}
			if got.w.DeliveredBits() != ref.w.DeliveredBits() {
				t.Fatalf("seed %d K=%d: delivered %d bits, direct %d",
					seed, k, got.w.DeliveredBits(), ref.w.DeliveredBits())
			}
			if got.w.AttachedCount() != ref.w.AttachedCount() {
				t.Fatalf("seed %d K=%d: attached %d, direct %d",
					seed, k, got.w.AttachedCount(), ref.w.AttachedCount())
			}
			if got.windows != int64(epochs)*4 {
				t.Fatalf("seed %d K=%d: ran %d windows, want %d", seed, k, got.windows, epochs*4)
			}
			totalHandoffs += got.msgs
		}
	}
	// The contract is vacuous if no UE ever crossed a slab boundary.
	if totalHandoffs == 0 {
		t.Fatal("no cross-shard handoff messages over any seed — boundary mobility untested")
	}
}

// The incumbent must actually silence APs: mid-outage throughput and
// CQI drop relative to the same world without the pop-up, identically
// in direct and sharded mode (already pinned above) and materially
// (pinned here).
func TestMetroIncumbentBitesAndClears(t *testing.T) {
	cfgOn := shardCity(3, 1)
	cfgOn.Incumbents = cfgOn.Incumbents[:1] // the bounded-duration pop-up only
	cfgOff := shardCity(3, 1)
	cfgOff.Incumbents = nil
	on, off := New(cfgOn), New(cfgOff)
	on.Run(10) // epochs 0-9; incumbent 0 active from epoch 6
	off.Run(10)
	if on.DeliveredBits() >= off.DeliveredBits() {
		t.Fatalf("incumbent outage delivered %d bits >= undisturbed %d", on.DeliveredBits(), off.DeliveredBits())
	}
	silenced := 0
	for a := range on.apDownCnt {
		if on.apDownCnt[a] > 0 {
			silenced++
		}
	}
	if silenced == 0 {
		t.Fatal("incumbent arrival silenced no APs")
	}
	// After Epoch+Duration the first incumbent departs again.
	on.Run(10) // through epoch 19; departure at epoch 18
	for a := range on.apDownCnt {
		if on.apDownCnt[a] != 0 {
			t.Fatalf("AP %d still silenced after incumbent departure", a)
		}
	}
}
