package propagation

import "cellfi/internal/geo"

// LinkCache memoizes the static part of a link budget — path loss plus
// frozen shadowing (Model.LinkLossDB) — keyed by a directed (tx, rx)
// node-ID pair. Link loss between static endpoints never changes, yet
// the SINR paths in internal/lte and internal/wifi recompute it on
// every subframe and every carrier-sense scan; the shadowing term alone
// seeds a fresh RNG per call. The cache turns those recomputations into
// one map probe on the static-topology fast path.
//
// Invalidation is epoch-based and O(1): every node ID carries an epoch
// counter, each cache entry remembers the epochs of both endpoints at
// fill time, and an entry whose endpoint epochs no longer match is
// recomputed on next use. Callers that move a node (mobility steps,
// handover re-sites) must call Invalidate with that node's ID —
// internal/netsim wires this into its mobility updates. Over-
// invalidation is harmless (one extra recompute); skipping Invalidate
// after a position change serves stale gains.
//
// Node IDs are caller-defined. The cache never normalizes key order, so
// two ID spaces (say cells and clients) may overlap safely as long as
// every (tx, rx) pair is unambiguous in the caller's convention —
// internal/lte always keys (cell, client), internal/netsim offsets
// client IDs past the cell range, internal/wifi uses one dense space.
//
// A LinkCache is deterministic by construction: it caches the exact
// float64 LinkLossDB returns, so cached and uncached runs are
// byte-identical. It is not safe for concurrent use; give each
// simulation (engine) its own cache, as each scenario run does.
type LinkCache struct {
	model   *Model
	entries map[uint64]linkEntry
	epochs  []uint32

	hits, misses, invalidations uint64
}

type linkEntry struct {
	lossDB float64
	// gainLin is 10^(-lossDB/10), filled lazily on the first
	// PathGainLinear query of the entry (gainSet); loss-only users never
	// pay the pow.
	gainLin          float64
	gainSet          bool
	txEpoch, rxEpoch uint32
}

// NewLinkCache wraps a propagation model in a link-loss cache. nodes
// sizes the epoch table; IDs at or above it grow the table on demand.
func NewLinkCache(model *Model, nodes int) *LinkCache {
	if nodes < 0 {
		nodes = 0
	}
	return &LinkCache{
		model:   model,
		entries: make(map[uint64]linkEntry),
		epochs:  make([]uint32, nodes),
	}
}

// Model returns the wrapped propagation model.
func (c *LinkCache) Model() *Model { return c.model }

// epoch returns node's current epoch, growing the table if needed.
func (c *LinkCache) epoch(node int) uint32 {
	if node >= len(c.epochs) {
		grown := make([]uint32, node+1)
		copy(grown, c.epochs)
		c.epochs = grown
	}
	return c.epochs[node]
}

// LossDB returns Model.LinkLossDB(txPos, rxPos), cached under the
// directed pair (tx, rx). The positions are only consulted on a miss;
// after a node moves, call Invalidate(node) or its links go stale.
func (c *LinkCache) LossDB(tx, rx int, txPos, rxPos geo.Point) float64 {
	key := LinkID(tx, rx)
	te, re := c.epoch(tx), c.epoch(rx)
	if ent, ok := c.entries[key]; ok && ent.txEpoch == te && ent.rxEpoch == re {
		c.hits++
		return ent.lossDB
	}
	c.misses++
	loss := c.model.LinkLossDB(txPos, rxPos)
	c.entries[key] = linkEntry{lossDB: loss, txEpoch: te, rxEpoch: re}
	return loss
}

// PathGainLinear returns the link's static path gain as a linear power
// factor, 10^(-LossDB/10), memoized alongside the dB entry. Interferer
// sums in milliwatts multiply this by the transmit power instead of
// converting dBm per (interferer, receiver) pair — the pow runs once
// per link per topology, not once per sum term.
func (c *LinkCache) PathGainLinear(tx, rx int, txPos, rxPos geo.Point) float64 {
	key := LinkID(tx, rx)
	te, re := c.epoch(tx), c.epoch(rx)
	ent, ok := c.entries[key]
	if !ok || ent.txEpoch != te || ent.rxEpoch != re {
		c.misses++
		ent = linkEntry{lossDB: c.model.LinkLossDB(txPos, rxPos), txEpoch: te, rxEpoch: re}
	} else {
		c.hits++
	}
	if !ent.gainSet {
		ent.gainLin = DBmToMW(-ent.lossDB) // 10^(-loss/10)
		ent.gainSet = true
		c.entries[key] = ent
	}
	return ent.gainLin
}

// Invalidate marks every cached link touching node stale in O(1); the
// affected entries recompute lazily on next lookup.
func (c *LinkCache) Invalidate(node int) {
	c.epoch(node) // ensure the table covers node
	c.epochs[node]++
	c.invalidations++
}

// InvalidateAll drops every cached link (topology regeneration).
func (c *LinkCache) InvalidateAll() {
	for i := range c.epochs {
		c.epochs[i]++
	}
	c.entries = make(map[uint64]linkEntry)
	c.invalidations++
}

// CacheStats reports a LinkCache's hit/miss counters.
type CacheStats struct {
	Hits, Misses, Invalidations uint64
	Entries                     int
}

// Stats returns a snapshot of the cache counters.
func (c *LinkCache) Stats() CacheStats {
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Entries:       len(c.entries),
	}
}
