package propagation

import (
	"testing"

	"cellfi/internal/geo"
)

func TestLinkCacheReturnsModelValues(t *testing.T) {
	m := DefaultUrban(7)
	c := NewLinkCache(m, 8)
	a, b := geo.Point{X: 0, Y: 0}, geo.Point{X: 310, Y: 120}
	want := m.LinkLossDB(a, b)
	for i := 0; i < 3; i++ {
		if got := c.LossDB(1, 2, a, b); got != want {
			t.Fatalf("cached loss = %v, want exact model value %v", got, want)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 miss then 2 hits", st)
	}
}

func TestLinkCacheDirectedKeys(t *testing.T) {
	m := DefaultUrban(3)
	c := NewLinkCache(m, 8)
	a, b := geo.Point{X: 0}, geo.Point{X: 500}
	// (1,2) and (2,1) are distinct keys; both must return the model's
	// value for the positions given (symmetric here).
	l1 := c.LossDB(1, 2, a, b)
	l2 := c.LossDB(2, 1, b, a)
	if l1 != l2 {
		t.Fatalf("symmetric link cached asymmetrically: %v vs %v", l1, l2)
	}
	if c.Stats().Misses != 2 {
		t.Fatalf("directed pairs should miss separately, stats = %+v", c.Stats())
	}
}

func TestLinkCacheInvalidate(t *testing.T) {
	m := DefaultUrban(5)
	c := NewLinkCache(m, 4)
	a, old := geo.Point{X: 0}, geo.Point{X: 200}
	moved := geo.Point{X: 900}

	stale := c.LossDB(0, 1, a, old)
	// Without invalidation the cache would keep serving the old value
	// even for new positions — that is the documented contract.
	if got := c.LossDB(0, 1, a, moved); got != stale {
		t.Fatalf("cache recomputed without invalidation: %v vs %v", got, stale)
	}

	c.Invalidate(1)
	want := m.LinkLossDB(a, moved)
	if got := c.LossDB(0, 1, a, moved); got != want {
		t.Fatalf("post-invalidate loss = %v, want %v", got, want)
	}
	// Links not touching node 1 survive invalidation.
	c.LossDB(0, 2, a, old)
	h0 := c.Stats().Hits
	c.LossDB(0, 2, a, old)
	if c.Stats().Hits != h0+1 {
		t.Fatal("unrelated link was invalidated")
	}
}

func TestLinkCacheInvalidateAll(t *testing.T) {
	c := NewLinkCache(DefaultUrban(1), 4)
	a, b := geo.Point{X: 0}, geo.Point{X: 100}
	c.LossDB(0, 1, a, b)
	c.InvalidateAll()
	c.LossDB(0, 1, a, b)
	st := c.Stats()
	if st.Misses != 2 {
		t.Fatalf("InvalidateAll did not drop entries: %+v", st)
	}
}

func TestLinkCacheGrowsEpochTable(t *testing.T) {
	c := NewLinkCache(DefaultUrban(1), 0)
	a, b := geo.Point{X: 0}, geo.Point{X: 50}
	c.LossDB(1000, 2000, a, b) // IDs beyond the initial table
	c.Invalidate(5000)
	if got := c.LossDB(1000, 2000, a, b); got != c.Model().LinkLossDB(a, b) {
		t.Fatalf("grown-table lookup wrong: %v", got)
	}
}

func BenchmarkLinkLossUncached(b *testing.B) {
	m := DefaultUrban(1)
	a, p := geo.Point{X: 0}, geo.Point{X: 400, Y: 300}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.LinkLossDB(a, p)
	}
}

func BenchmarkLinkLossCached(b *testing.B) {
	c := NewLinkCache(DefaultUrban(1), 8)
	a, p := geo.Point{X: 0}, geo.Point{X: 400, Y: 300}
	c.LossDB(0, 1, a, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.LossDB(0, 1, a, p)
	}
}
