package propagation

import (
	"math"
	"testing"
	"testing/quick"

	"cellfi/internal/geo"
)

func TestDBmConversionRoundTrip(t *testing.T) {
	for _, dbm := range []float64{-120, -100, -60, 0, 23, 36} {
		if got := MWToDBm(DBmToMW(dbm)); math.Abs(got-dbm) > 1e-9 {
			t.Errorf("round-trip %g dBm -> %g", dbm, got)
		}
	}
	if !math.IsInf(MWToDBm(0), -1) {
		t.Error("MWToDBm(0) should be -Inf")
	}
}

func TestNoiseFloor(t *testing.T) {
	// 5 MHz with 7 dB NF: -174 + 67 + 7 = -100 dBm (approximately).
	got := NoiseDBm(5e6, 7)
	if math.Abs(got-(-100)) > 0.05 {
		t.Errorf("5 MHz noise floor = %g dBm, want about -100", got)
	}
	// Single 180 kHz resource block: -174 + 52.55 + 7 = -114.4 dBm.
	got = NoiseDBm(180e3, 7)
	if math.Abs(got-(-114.4)) > 0.1 {
		t.Errorf("180 kHz noise floor = %g dBm, want about -114.4", got)
	}
}

func TestPathLossMonotone(t *testing.T) {
	m := DefaultUrban(1)
	prev := -1.0
	for d := 1.0; d < 3000; d *= 1.3 {
		pl := m.PathLossDB(d)
		if pl < prev {
			t.Fatalf("path loss decreased at %g m", d)
		}
		prev = pl
	}
}

func TestPathLossReferenceClamp(t *testing.T) {
	m := DefaultUrban(1)
	if m.PathLossDB(1) != m.RefLossDB || m.PathLossDB(10) != m.RefLossDB {
		t.Error("path loss below reference distance should clamp to RefLossDB")
	}
}

// The headline calibration: the paper measures 1.3 km reach at 36 dBm
// EIRP. At 1.3 km the downlink SNR over 5 MHz must sit above the minimum
// LTE decode threshold (about -6 dB) but not lavishly so, and at 2 km the
// link should be dead.
func TestCalibration13kmReach(t *testing.T) {
	m := DefaultUrban(1)
	const eirp = 36.0 // 30 dBm small cell + 6 dBi sector (Section 3.1)
	noise := NoiseDBm(5e6, 7)
	snrAt := func(d float64) float64 { return eirp - m.PathLossDB(d) - noise }

	if snr := snrAt(1300); snr < -3 || snr > 15 {
		t.Errorf("SNR at 1.3 km = %.1f dB; want a marginal-but-alive link", snr)
	}
	if snr := snrAt(2500); snr > -3 {
		t.Errorf("SNR at 2.5 km = %.1f dB; link should be dead", snr)
	}
	if snr := snrAt(100); snr < 25 {
		t.Errorf("SNR at 100 m = %.1f dB; near links should be strong", snr)
	}
}

// Uplink calibration: 20 dBm client on a single 180 kHz resource block
// (the OFDMA trick of Figure 1c) must also close at about 1.3 km.
func TestCalibrationUplinkSingleRB(t *testing.T) {
	m := DefaultUrban(1)
	noise := NoiseDBm(180e3, 7)
	snr := 20 + 6 - m.PathLossDB(1300) - noise // client 20 dBm + AP rx sector gain
	if snr < -3 {
		t.Errorf("uplink single-RB SNR at 1.3 km = %.1f dB; should close", snr)
	}
	// Full-bandwidth uplink (what Wi-Fi would have to do) should be
	// several dB worse — this is the OFDMA advantage the paper cites.
	full := 20 + 6 - m.PathLossDB(1300) - NoiseDBm(5e6, 7)
	if full >= snr-10 {
		t.Errorf("full-band SNR %.1f vs single-RB %.1f: expected >= 10 dB gap", full, snr)
	}
}

func TestShadowingSymmetricDeterministic(t *testing.T) {
	m := DefaultUrban(99)
	a, b := geo.Point{X: 10, Y: 20}, geo.Point{X: 500, Y: 700}
	s1 := m.ShadowingDB(a, b)
	s2 := m.ShadowingDB(b, a)
	if s1 != s2 {
		t.Errorf("shadowing asymmetric: %g vs %g", s1, s2)
	}
	if s1 != m.ShadowingDB(a, b) {
		t.Error("shadowing not deterministic")
	}
	m2 := DefaultUrban(100)
	if m2.ShadowingDB(a, b) == s1 {
		t.Error("different seeds gave identical shadowing")
	}
}

func TestShadowingStatistics(t *testing.T) {
	m := DefaultUrban(7)
	var sum, sum2 float64
	const n = 4000
	for i := 0; i < n; i++ {
		a := geo.Point{X: float64(i), Y: 0}
		b := geo.Point{X: float64(i), Y: 1000}
		s := m.ShadowingDB(a, b)
		sum += s
		sum2 += s * s
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean) > 0.35 {
		t.Errorf("shadowing mean = %g dB, want about 0", mean)
	}
	if math.Abs(std-m.ShadowSigmaDB) > 0.4 {
		t.Errorf("shadowing std = %g dB, want about %g", std, m.ShadowSigmaDB)
	}
}

func TestShadowingZeroSigma(t *testing.T) {
	m := DefaultUrban(1)
	m.ShadowSigmaDB = 0
	if m.ShadowingDB(geo.Point{}, geo.Point{X: 1}) != 0 {
		t.Error("zero sigma should produce zero shadowing")
	}
}

func TestAntennaOmni(t *testing.T) {
	a := Antenna{GainDBi: 3}
	for _, b := range []float64{0, 1, math.Pi, -2} {
		if a.GainDB(b) != 3 {
			t.Errorf("omni gain at bearing %g = %g, want 3", b, a.GainDB(b))
		}
	}
}

func TestSectorAntennaPattern(t *testing.T) {
	a := Sector(0)
	if g := a.GainDB(0); g != 6 {
		t.Errorf("boresight gain = %g, want 6", g)
	}
	if g := a.GainDB(math.Pi / 4); g != 6 { // 45 deg, inside 60 deg half-width
		t.Errorf("in-sector gain = %g, want 6", g)
	}
	back := a.GainDB(math.Pi)
	if back > 6-15+1e-9 {
		t.Errorf("back-lobe gain = %g, want %g", back, 6-15.0)
	}
	// Roll-off region: between edge and back.
	mid := a.GainDB(math.Pi / 2)
	if mid >= 6 || mid <= back {
		t.Errorf("roll-off gain %g not between boresight 6 and back %g", mid, back)
	}
}

func TestSectorAntennaWrapAround(t *testing.T) {
	a := Sector(math.Pi - 0.1)
	// A bearing just across the -pi/pi wrap should still be in-sector.
	if g := a.GainDB(-math.Pi + 0.1); g != 6 {
		t.Errorf("wrap-around bearing gain = %g, want 6", g)
	}
}

func TestFadingStatistics(t *testing.T) {
	f := NewFading(3)
	var sumLin float64
	const n = 20000
	deepFades := 0
	for i := 0; i < n; i++ {
		db := f.GainDB(uint64(i), i%13, int64(i)*100)
		lin := math.Pow(10, db/10)
		sumLin += lin
		if db < -10 {
			deepFades++
		}
	}
	mean := sumLin / n
	if mean < 0.9 || mean > 1.1 {
		t.Errorf("mean linear fading gain = %g, want about 1", mean)
	}
	// P(exp(1) < 0.1) is about 9.5%: Rayleigh deep fades must occur.
	frac := float64(deepFades) / n
	if frac < 0.06 || frac > 0.14 {
		t.Errorf("deep-fade fraction = %g, want about 0.095", frac)
	}
}

func TestFadingBlockStructure(t *testing.T) {
	f := NewFading(5)
	// Same block -> same fade; different block -> (almost surely) different.
	a := f.GainDB(1, 3, 0)
	b := f.GainDB(1, 3, 99) // same 100 ms block
	c := f.GainDB(1, 3, 100)
	if a != b {
		t.Error("fade changed within a coherence block")
	}
	if a == c {
		t.Error("fade identical across coherence blocks")
	}
	if f.GainDB(1, 4, 0) == a {
		t.Error("fade identical across subchannels")
	}
	if f.GainDB(2, 3, 0) == a {
		t.Error("fade identical across links")
	}
}

func TestFadingDisabled(t *testing.T) {
	f := &Fading{Disabled: true}
	if f.GainDB(1, 1, 1) != 0 {
		t.Error("disabled fading should be 0 dB")
	}
	var nilF *Fading
	if nilF.GainDB(1, 1, 1) != 0 {
		t.Error("nil fading should be 0 dB")
	}
}

func TestSINR(t *testing.T) {
	// Signal -80 dBm, noise -100 dBm, no interference: SINR 20 dB.
	if got := SINRdB(-80, nil, -100); math.Abs(got-20) > 1e-9 {
		t.Errorf("SINR no-interference = %g, want 20", got)
	}
	// One interferer equal to noise halves the denominator budget: -3 dB.
	got := SINRdB(-80, []float64{-100}, -100)
	if math.Abs(got-(20-3.0103)) > 0.01 {
		t.Errorf("SINR with equal interferer = %g, want about 16.99", got)
	}
	// Dominant interferer: SINR approaches S - I.
	got = SINRdB(-80, []float64{-70}, -120)
	if math.Abs(got-(-10)) > 0.05 {
		t.Errorf("SINR interference-limited = %g, want about -10", got)
	}
}

func TestSINRNeverExceedsSNR(t *testing.T) {
	f := func(sig, i1, i2 float64) bool {
		s := math.Mod(math.Abs(sig), 100) - 120
		a := math.Mod(math.Abs(i1), 100) - 150
		b := math.Mod(math.Abs(i2), 100) - 150
		return SINRdB(s, []float64{a, b}, -100) <= SNRdB(s, -100)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkID(t *testing.T) {
	if LinkID(1, 2) == LinkID(2, 1) {
		t.Error("LinkID should be directed")
	}
	if LinkID(1, 2) != LinkID(1, 2) {
		t.Error("LinkID not deterministic")
	}
}

func BenchmarkLinkLoss(b *testing.B) {
	m := DefaultUrban(1)
	p, q := geo.Point{X: 0, Y: 0}, geo.Point{X: 800, Y: 300}
	for i := 0; i < b.N; i++ {
		_ = m.LinkLossDB(p, q)
	}
}

func BenchmarkFadingGain(b *testing.B) {
	f := NewFading(1)
	for i := 0; i < b.N; i++ {
		_ = f.GainDB(uint64(i), i%13, int64(i))
	}
}

// Okumura-Hata spot checks at 600 MHz, 15 m base, 1.5 m mobile.
func TestHataUrbanKnownValues(t *testing.T) {
	m := HataUrbanModel(600, 15, 1.5, 1)
	// Hand-computed: slope 37.2 dB/decade, 126.0 dB at 1 km.
	if math.Abs(m.Exponent*10-37.2) > 0.1 {
		t.Fatalf("Hata slope = %.1f dB/decade, want 37.2", m.Exponent*10)
	}
	if got := m.PathLossDB(1000); math.Abs(got-126.0) > 0.5 {
		t.Fatalf("Hata loss at 1 km = %.1f dB, want ~126", got)
	}
	// Higher masts lose less.
	high := HataUrbanModel(600, 30, 1.5, 1)
	if high.PathLossDB(1000) >= m.PathLossDB(1000) {
		t.Fatal("taller base station should reduce path loss")
	}
}

// The independent check behind the drive-test calibration: Hata at the
// paper's deployment parameters agrees with DefaultUrban within 3 dB
// from 100 m to 2 km.
func TestHataValidatesDefaultUrban(t *testing.T) {
	hata := HataUrbanModel(600, 15, 1.5, 1)
	def := DefaultUrban(1)
	for d := 100.0; d <= 2000; d *= 1.3 {
		gap := math.Abs(hata.PathLossDB(d) - def.PathLossDB(d))
		if gap > 3 {
			t.Fatalf("Hata and DefaultUrban diverge %.1f dB at %.0f m", gap, d)
		}
	}
}
