package propagation

import (
	"math"
	"sort"
	"testing"
)

// Kernel v2's sampler must still be Exponential(1): a Kolmogorov–
// Smirnov test against 1 - exp(-x) over a large hash-driven sample,
// plus the first three moments. The draws come through the public
// GainLinear face so the whole pipeline (base hash, per-link round,
// ziggurat) is under test.
func TestFadingZigguratDistribution(t *testing.T) {
	f := NewFading(11)
	const n = 200_000
	xs := make([]float64, n)
	var sum, sumSq, sumCube float64
	for i := 0; i < n; i++ {
		x := f.GainLinear(uint64(i), i%7, int64(i/7)*100)
		if x <= 0 {
			t.Fatalf("draw %d: gain %g, want strictly positive", i, x)
		}
		xs[i] = x
		sum += x
		sumSq += x * x
		sumCube += x * x * x
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("mean = %.4f, want 1 (Exp(1))", mean)
	}
	// Exp(1): E[X^2] = 2, E[X^3] = 6.
	if m2 := sumSq / n; math.Abs(m2-2) > 0.05 {
		t.Errorf("E[X^2] = %.4f, want 2", m2)
	}
	if m3 := sumCube / n; math.Abs(m3-6) > 0.4 {
		t.Errorf("E[X^3] = %.4f, want 6", m3)
	}

	sort.Float64s(xs)
	var d float64
	for i, x := range xs {
		cdf := 1 - math.Exp(-x)
		if lo := cdf - float64(i)/n; lo > d {
			d = lo
		}
		if hi := float64(i+1)/n - cdf; hi > d {
			d = hi
		}
	}
	// KS critical value at alpha = 0.001 is ~1.95/sqrt(n); use 2.2 so
	// the test only trips on a broken sampler, not an unlucky seed.
	if crit := 2.2 / math.Sqrt(n); d > crit {
		t.Errorf("KS statistic %.5f exceeds %.5f — sampler is not Exp(1)", d, crit)
	}
}

// The deep-fade rate (Rayleigh envelope below -10 dB, i.e. power below
// 0.1) must match P(Exp(1) < 0.1) ~ 9.5% — the property the SINR
// dynamics depend on.
func TestFadingZigguratDeepFades(t *testing.T) {
	f := NewFading(3)
	const n = 50_000
	deep := 0
	for i := 0; i < n; i++ {
		if f.GainLinear(uint64(i), 0, 0) < 0.1 {
			deep++
		}
	}
	frac := float64(deep) / n
	if frac < 0.08 || frac > 0.11 {
		t.Errorf("deep-fade fraction = %.4f, want about 0.095", frac)
	}
}

// The v2 draw stream is pinned: these exact float64 bits must never
// change without a deliberate kernel version bump (regenerate with
// go test -run TestFadingGoldenVector -v -tags fadinggen and update
// both this table and the DESIGN.md kernel note). Committed artifacts
// (BENCH_city.json) and any cross-binary reproduction depend on it.
func TestFadingGoldenVector(t *testing.T) {
	f := NewFading(7)
	cases := []struct {
		link uint64
		sc   int
		tMS  int64
	}{
		{0, 0, 0},
		{1, 0, 0},
		{1, 3, 0},
		{1, 3, 100},
		{12345, 7, 900},
		{1 << 40, 2, 123456},
		{42, 12, 1_000_000},
		{999_999, 1, 50},
	}
	got := make([]uint64, len(cases))
	for i, c := range cases {
		got[i] = math.Float64bits(f.GainLinear(c.link, c.sc, c.tMS))
	}
	want := []uint64{
		0x3ff73c4de8b52b4a, // 1.4522227373260699
		0x3ff8164e684cedbd, // 1.5054458688963301
		0x3fc60e0ba3b8b929, // 0.17230363363473458
		0x3ff5c3399b72ac1d, // 1.3601623603997333
		0x3fe61af728a199e0, // 0.6907916825846847
		0x3fc2ee93495a2e37, // 0.14790574151662536
		0x3ffa4a9276a846b3, // 1.643206084733191
		0x3fd1cf76fc414edf, // 0.27828764566696224
	}
	for i := range cases {
		if got[i] != want[i] {
			t.Errorf("case %d (%+v): gain bits %#016x, want %#016x (value %g)",
				i, cases[i], got[i], want[i], math.Float64frombits(got[i]))
		}
	}
}

// AppendGainsLinear is the batch face of GainLinear: bit-identical
// values, append semantics, and unit gains when fading is nil or
// disabled.
func TestAppendGainsLinearMatchesScalar(t *testing.T) {
	f := NewFading(9)
	links := make([]uint64, 257) // crosses the scratch-growth boundary
	for i := range links {
		links[i] = uint64(i * 2654435761)
	}
	for _, sc := range []int{0, 3, 12} {
		for _, tMS := range []int64{0, 99, 100, 123456} {
			dst := f.AppendGainsLinear([]float64{-1}, links, sc, tMS)
			if len(dst) != 1+len(links) || dst[0] != -1 {
				t.Fatalf("append semantics broken: len %d, dst[0] %g", len(dst), dst[0])
			}
			for i, l := range links {
				if want := f.GainLinear(l, sc, tMS); dst[1+i] != want {
					t.Fatalf("sc %d tMS %d link %d: batch %g != scalar %g",
						sc, tMS, l, dst[1+i], want)
				}
			}
		}
	}
	var nilF *Fading
	for _, g := range nilF.AppendGainsLinear(nil, links[:4], 0, 0) {
		if g != 1 {
			t.Fatalf("nil fading batch gain %g, want 1", g)
		}
	}
	off := &Fading{Disabled: true, BlockMS: 100}
	for _, g := range off.AppendGainsLinear(nil, links[:4], 0, 0) {
		if g != 1 {
			t.Fatalf("disabled fading batch gain %g, want 1", g)
		}
	}
}

// The ziggurat fast path must dominate: count slow-path entries (tail
// or wedge) over a large sample by comparing against a re-derivation.
// ~1.1% of draws reject in Marsaglia's 256-layer exponential ziggurat;
// fail if the table construction ever degrades that.
func TestZigguratAcceptRate(t *testing.T) {
	const n = 1_000_000
	slow := 0
	for i := 0; i < n; i++ {
		h := fadeRound(uint64(i)*0x9e3779b97f4a7c15+1, 0xabcdef)
		j := uint32(h)
		if j >= zigK[j&0xff] || j == 0 {
			slow++
		}
	}
	if frac := float64(slow) / n; frac > 0.03 {
		t.Errorf("ziggurat slow-path rate %.4f, want < 0.03", frac)
	}
}

// fadingV1 reproduces the kernel-v1 draw verbatim (one full varargs
// hash64 plus -log(u) per link, behind the same method-call shape the
// old hot loops paid), kept as the reference the fade-draw speedup is
// measured against in BENCH_city.json.
type fadingV1 struct {
	Seed     int64
	BlockMS  int64
	Disabled bool
}

func (f *fadingV1) GainLinear(linkID uint64, subchannel int, tMS int64) float64 {
	if f == nil || f.Disabled {
		return 1
	}
	block := tMS / f.BlockMS
	h := hash64(f.Seed, linkID, uint64(subchannel)+0x5bd1e995, uint64(block))
	u := (float64(h>>11) + 1) / (1 << 53)
	return -math.Log(u)
}

func BenchmarkFadeDrawV1(b *testing.B) {
	f := &fadingV1{Seed: 1, BlockMS: 100}
	links := benchLinks()
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += f.GainLinear(links[i&1023], 3, 4200)
	}
	_ = sink
}

func BenchmarkFadeDrawScalar(b *testing.B) {
	f := NewFading(1)
	links := benchLinks()
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += f.GainLinear(links[i&1023], 3, 4200)
	}
	_ = sink
}

// BenchmarkFadeDrawBatch is the kernel the metro sweep rides: one op =
// one draw, amortized over 32-link rows (the city's MaxNeighbors).
func BenchmarkFadeDrawBatch(b *testing.B) {
	f := NewFading(1)
	links := benchLinks()[:32]
	dst := make([]float64, 0, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 32 {
		dst = f.AppendGainsLinear(dst[:0], links, 3, 4200)
	}
	_ = dst
}

func benchLinks() []uint64 {
	links := make([]uint64, 1024)
	for i := range links {
		links[i] = LinkID(i%2000, 2000+i)
	}
	return links
}
