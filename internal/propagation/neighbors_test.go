package propagation

import (
	"math"
	"testing"
)

func TestInterferenceRadiusInvertsPathLoss(t *testing.T) {
	m := DefaultUrban(1)
	const eirp, nf = 36.0, 7.0
	noise := NoiseDBm(5e6, nf)
	for _, delta := range []float64{0, 6, 10, 20} {
		d := m.InterferenceRadius(eirp, noise, delta)
		if d <= m.RefDist {
			t.Fatalf("delta %g: radius %.1f not beyond RefDist", delta, d)
		}
		// At the returned distance the median loss plus the 3-sigma
		// shadow allowance puts the transmitter exactly delta below
		// noise.
		rx := eirp - (m.PathLossDB(d) - 3*m.ShadowSigmaDB)
		if want := noise - delta; math.Abs(rx-want) > 1e-9 {
			t.Fatalf("delta %g: rx at radius = %.6f dBm, want %.6f", delta, rx, want)
		}
	}
}

func TestInterferenceRadiusMonotoneInDelta(t *testing.T) {
	m := DefaultUrban(1)
	noise := NoiseDBm(5e6, 7)
	prev := 0.0
	for _, delta := range []float64{0, 3, 6, 10, 20} {
		d := m.InterferenceRadius(36, noise, delta)
		if d <= prev {
			t.Fatalf("radius not increasing in delta: %g at delta %g after %g", d, delta, prev)
		}
		prev = d
	}
}

func TestInterferenceRadiusClampsToRefDist(t *testing.T) {
	m := DefaultUrban(1)
	// A hopeless link budget (tiny EIRP vs a huge noise floor) clamps.
	if d := m.InterferenceRadius(-200, 0, 0); d != m.RefDist {
		t.Fatalf("radius = %g, want RefDist %g", d, m.RefDist)
	}
}

// GainDB is defined as 10*log10(GainLinear); the two must agree
// bit-for-bit so switching a hot path to the linear form cannot perturb
// any seeded result.
func TestFadingGainLinearMatchesGainDB(t *testing.T) {
	f := NewFading(7)
	for link := uint64(0); link < 50; link++ {
		for sc := 0; sc < 4; sc++ {
			for tMS := int64(0); tMS < 1000; tMS += 100 {
				lin := f.GainLinear(link, sc, tMS)
				if lin <= 0 {
					t.Fatalf("GainLinear = %g, want positive", lin)
				}
				if db := f.GainDB(link, sc, tMS); db != 10*math.Log10(lin) {
					t.Fatalf("GainDB %g != 10*log10(GainLinear) %g", db, 10*math.Log10(lin))
				}
			}
		}
	}
	var nilF *Fading
	if nilF.GainLinear(1, 0, 0) != 1 || nilF.GainDB(1, 0, 0) != 0 {
		t.Fatal("nil Fading must be a unit gain")
	}
	off := &Fading{Disabled: true, BlockMS: 100}
	if off.GainLinear(1, 0, 0) != 1 || off.GainDB(1, 0, 0) != 0 {
		t.Fatal("disabled Fading must be a unit gain")
	}
}
