// Package propagation models the radio environment for CellFi
// simulations: log-distance path loss in the low-UHF TV band, log-normal
// shadowing, block fast fading per subchannel, sector antennas, thermal
// noise and SINR arithmetic.
//
// The default model is calibrated against the paper's outdoor drive test
// (Section 3.1): with 36 dBm EIRP at the access point and a 20 dBm
// client, LTE reaches about 1.3 km in an urban environment and delivers
// at least 1 Mbps at more than 85% of measured locations.
package propagation

import (
	"math"

	"cellfi/internal/geo"
)

// DB/milliwatt conversion helpers.

// DBmToMW converts dBm to milliwatts.
func DBmToMW(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MWToDBm converts milliwatts to dBm. Zero (or negative) power maps to
// -infinity dBm.
func MWToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// NoiseDBm returns the thermal noise floor for the given bandwidth and
// receiver noise figure: -174 dBm/Hz + 10*log10(BW) + NF.
func NoiseDBm(bandwidthHz, noiseFigureDB float64) float64 {
	return -174 + 10*math.Log10(bandwidthHz) + noiseFigureDB
}

// Model is a log-distance path-loss model with log-normal shadowing.
// Shadowing is frozen per link (deterministic in the node pair), as in a
// static outdoor deployment; fast fading is handled by Fading.
type Model struct {
	// Exponent is the path-loss exponent (3.8 default: urban, below-
	// rooftop clients, calibrated to the paper's 1.3 km range).
	Exponent float64
	// RefLossDB is the loss at RefDist metres. The default 48 dB at
	// 10 m corresponds to free-space loss at 600 MHz.
	RefLossDB float64
	RefDist   float64
	// ShadowSigmaDB is the log-normal shadowing standard deviation.
	ShadowSigmaDB float64
	// Seed decorrelates shadowing across simulation trials.
	Seed int64
}

// DefaultUrban returns the calibrated TV-band urban model used throughout
// the evaluation.
func DefaultUrban(seed int64) *Model {
	return &Model{
		Exponent:      3.8,
		RefLossDB:     48,
		RefDist:       10,
		ShadowSigmaDB: 6,
		Seed:          seed,
	}
}

// IndoorShortRange returns a model for the 802.11ac comparison scenario
// of Figure 2: worse propagation exponent but much shorter links, chosen
// so the *received SNR distribution* matches the outdoor network, per
// Section 3.2 of the paper.
func IndoorShortRange(seed int64) *Model {
	return &Model{
		Exponent:      4.2,
		RefLossDB:     47, // free space at 10 m, 5 GHz-ish band folded into exponent
		RefDist:       10,
		ShadowSigmaDB: 4,
		Seed:          seed,
	}
}

// PathLossDB returns the distance-dependent median path loss in dB.
// Distances below RefDist clamp to RefLossDB.
func (m *Model) PathLossDB(d float64) float64 {
	if d <= m.RefDist {
		return m.RefLossDB
	}
	return m.RefLossDB + 10*m.Exponent*math.Log10(d/m.RefDist)
}

// ShadowingDB returns the frozen shadowing term for the link a—b in dB.
// It is symmetric (ShadowingDB(a,b) == ShadowingDB(b,a)) and
// deterministic given the model seed.
func (m *Model) ShadowingDB(a, b geo.Point) float64 {
	if m.ShadowSigmaDB == 0 {
		return 0
	}
	// Order the endpoints so the hash is symmetric.
	ax, ay, bx, by := a.X, a.Y, b.X, b.Y
	if ax > bx || (ax == bx && ay > by) {
		ax, ay, bx, by = bx, by, ax, ay
	}
	h := hash64(m.Seed, math.Float64bits(ax), math.Float64bits(ay),
		math.Float64bits(bx), math.Float64bits(by))
	return boxMuller(h) * m.ShadowSigmaDB
}

// boxMuller maps a 64-bit hash to a standard normal deviate. City-scale
// worlds evaluate millions of fresh links (100k UEs x their AP
// neighborhoods), so the draw must not seed a full math/rand generator
// per link (~27 us each); two sub-hashes through the Box-Muller
// transform give the same frozen-per-link determinism at ~50 ns.
func boxMuller(h uint64) float64 {
	h2 := hash64(int64(h), 0x6d7970726f70)
	u1 := (float64(h>>11) + 1) / (1 << 53)  // (0,1]
	u2 := (float64(h2>>11) + 1) / (1 << 53) // (0,1]
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LinkLossDB returns path loss plus shadowing for the link a—b.
func (m *Model) LinkLossDB(a, b geo.Point) float64 {
	return m.PathLossDB(a.Dist(b)) + m.ShadowingDB(a, b)
}

// hash64 is a small SplitMix64-style mixer over the inputs.
func hash64(seed int64, vals ...uint64) uint64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, v := range vals {
		h ^= v
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// Antenna describes a transmit antenna. The zero value is an isotropic
// 0 dBi antenna.
type Antenna struct {
	// GainDBi is the boresight gain.
	GainDBi float64
	// BeamwidthRad is the 3 dB sector width in radians; zero means
	// omnidirectional.
	BeamwidthRad float64
	// BoresightRad is the pointing direction.
	BoresightRad float64
	// FrontToBackDB is the attenuation outside the main sector
	// (applied fully beyond the beamwidth edge).
	FrontToBackDB float64
}

// Sector returns the 120-degree, 6 dBi sector antenna used on the
// paper's rooftop deployment (Section 6.1: Amphenol 7 dBi, ~120 degrees;
// we fold cable losses into 6 dBi EIRP arithmetic).
func Sector(boresightRad float64) Antenna {
	return Antenna{
		GainDBi:       6,
		BeamwidthRad:  2 * math.Pi / 3,
		BoresightRad:  boresightRad,
		FrontToBackDB: 15,
	}
}

// GainDB returns the antenna gain toward the given bearing.
// Inside the half-beamwidth the full gain applies; beyond it the gain
// rolls off linearly in angle down to GainDBi - FrontToBackDB.
func (a Antenna) GainDB(bearingRad float64) float64 {
	if a.BeamwidthRad == 0 {
		return a.GainDBi
	}
	off := math.Abs(angleDiff(bearingRad, a.BoresightRad))
	half := a.BeamwidthRad / 2
	if off <= half {
		return a.GainDBi
	}
	// Linear roll-off over one additional half-beamwidth.
	frac := (off - half) / half
	if frac > 1 {
		frac = 1
	}
	return a.GainDBi - frac*a.FrontToBackDB
}

func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// LinkID builds a stable directed link identifier from two node IDs.
func LinkID(from, to int) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// SINRdB combines a signal power with a set of interferer powers and a
// noise floor, all in dBm, and returns the SINR in dB.
func SINRdB(signalDBm float64, interfDBm []float64, noiseDBm float64) float64 {
	den := DBmToMW(noiseDBm)
	for _, i := range interfDBm {
		den += DBmToMW(i)
	}
	return signalDBm - MWToDBm(den)
}

// SNRdB is SINRdB with no interferers.
func SNRdB(signalDBm, noiseDBm float64) float64 { return signalDBm - noiseDBm }

// HataUrbanModel returns a Model whose parameters follow the
// Okumura-Hata urban formula (valid 150-1500 MHz — it covers the TV
// band, unlike COST-231 which starts at 1500 MHz):
//
//	L = 69.55 + 26.16 log10(f) - 13.82 log10(hb) - a(hm)
//	    + (44.9 - 6.55 log10(hb)) log10(d_km)
//
// with the small/medium-city mobile-antenna correction a(hm). Hata is
// log-distance in d, so it maps exactly onto Model. At 600 MHz with a
// 15 m base station and 1.5 m mobile it gives a 37.2 dB/decade slope
// and 126 dB at 1 km — within 2 dB of DefaultUrban's calibrated 48 dB
// @10 m + 38 dB/decade, an independent check on the drive-test
// calibration.
func HataUrbanModel(freqMHz, baseHeightM, mobileHeightM float64, seed int64) *Model {
	logF := math.Log10(freqMHz)
	logHb := math.Log10(baseHeightM)
	aHm := (1.1*logF-0.7)*mobileHeightM - (1.56*logF - 0.8)
	slope := 44.9 - 6.55*logHb // dB per decade of distance
	at1km := 69.55 + 26.16*logF - 13.82*logHb - aHm
	refDist := 10.0
	// L(10 m) = L(1 km) + slope*log10(0.01).
	refLoss := at1km + slope*math.Log10(refDist/1000)
	return &Model{
		Exponent:      slope / 10,
		RefLossDB:     refLoss,
		RefDist:       refDist,
		ShadowSigmaDB: 6,
		Seed:          seed,
	}
}
