package propagation

import (
	"math"

	"cellfi/internal/geo"
)

// NeighborSource enumerates the nodes whose transmissions can matter at
// a point: everything within the interference-significance radius.
// Implementations must append ids in ascending order so that float
// interference sums accumulate in the same order as a brute-force scan
// over a dense node slice (the determinism contract the equivalence
// tests pin down). *geo.Grid satisfies it directly.
//
// A nil NeighborSource in the consumers (lte.Environment, wifi.Network,
// netsim) means "scan everyone" — the pre-index behavior.
type NeighborSource interface {
	AppendWithin(dst []int32, p geo.Point, radius float64) []int32
}

var _ NeighborSource = (*geo.Grid)(nil)

// DefaultInterferenceDeltaDB is the default noise-floor margin for
// InterferenceRadius: a transmitter whose median received power is this
// many dB below the thermal noise floor moves the interference
// denominator by <0.3% and is treated as insignificant.
const DefaultInterferenceDeltaDB = 10

// InterferenceRadius returns the interference-significance radius in
// metres: the distance at which a transmitter at eirpDBm falls
// deltaDB below the noise floor noiseDBm under the median path loss,
// with a 3-sigma shadowing allowance so links the shadowing term
// happens to favor are still inside the radius. Beyond this distance a
// single interferer perturbs the SINR denominator by less than
// 10^(-delta/10) of noise; the truncation-correctness argument lives in
// DESIGN.md.
//
// The log-distance model inverts in closed form:
//
//	maxLoss = EIRP - (noise - delta) + 3*sigma
//	d       = RefDist * 10^((maxLoss - RefLossDB) / (10 * Exponent))
//
// Distances at or below RefDist (pathological parameters) clamp to
// RefDist.
func (m *Model) InterferenceRadius(eirpDBm, noiseDBm, deltaDB float64) float64 {
	maxLoss := eirpDBm - (noiseDBm - deltaDB) + 3*m.ShadowSigmaDB
	if maxLoss <= m.RefLossDB {
		return m.RefDist
	}
	return m.RefDist * math.Pow(10, (maxLoss-m.RefLossDB)/(10*m.Exponent))
}
