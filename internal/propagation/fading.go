package propagation

import "math"

// Fading generates deterministic block fast fading per (link, subchannel,
// time block). Fades are exponential in power (Rayleigh envelope),
// independent across subchannels (frequency-selective) and across
// coherence blocks (time-selective).
//
// # Fading kernel v2
//
// Draws come from a ziggurat Exponential(1) sampler fed by the same
// SplitMix64-style hash stream as kernel v1, not from -log(u): about 99%
// of draws are one table compare plus one multiply, with the log only on
// the tail and the exp only on wedge rejection. The hash absorbs
// (subchannel, block) first and the link ID last, so batch callers pay
// the (subchannel, block) prefix once per row and one mixing round per
// link (AppendGainsLinear). The distribution is unchanged — mean-1
// exponential power, Rayleigh envelope — but individual per-link draws
// re-rolled relative to kernel v1, following the ShadowingDB precedent:
// goldens and bench artifacts regenerate, cross-mode and cross-shard
// equivalence contracts are unaffected (every path draws through this
// one sampler). TestFadingGoldenVector pins the v2 stream.
type Fading struct {
	// Seed decorrelates trials.
	Seed int64
	// BlockMS is the coherence time in milliseconds (default 100 ms —
	// nomadic outdoor clients).
	BlockMS int64
	// Disabled turns fading off (0 dB always).
	Disabled bool
}

// NewFading returns a fading process with 100 ms coherence blocks.
func NewFading(seed int64) *Fading { return &Fading{Seed: seed, BlockMS: 100} }

// GainDB returns the fading gain in dB for the directed link linkID on
// the given subchannel during the coherence block containing tMS
// (milliseconds of simulation time). Mean power gain is 1 (0 dB average
// in the linear domain). It delegates to GainLinear, so the dB and
// linear paths are bit-for-bit coupled through the one v2 sampler.
func (f *Fading) GainDB(linkID uint64, subchannel int, tMS int64) float64 {
	if f == nil || f.Disabled {
		return 0
	}
	return 10 * math.Log10(f.GainLinear(linkID, subchannel, tMS))
}

// GainLinear returns the same fade as GainDB as a linear power gain
// (GainDB == 10*log10(GainLinear), bit-for-bit). Hot paths that work in
// milliwatts use it to skip the log10/pow round trip per interferer.
// The gain is strictly positive.
func (f *Fading) GainLinear(linkID uint64, subchannel int, tMS int64) float64 {
	if f == nil || f.Disabled {
		return 1
	}
	return expFromHash(fadeRound(f.fadeBase(subchannel, tMS/f.BlockMS), linkID))
}

// AppendGainsLinear appends one linear fading gain per link in links,
// all on the same subchannel and coherence block, and returns the
// extended slice. Each appended value is bit-identical to
// GainLinear(links[i], subchannel, tMS); the batch form hoists the
// (seed, subchannel, block) hash prefix out of the loop so the per-link
// cost is one mixing round plus the ziggurat table probe. With fading
// nil or disabled every gain is 1.
func (f *Fading) AppendGainsLinear(dst []float64, links []uint64, subchannel int, tMS int64) []float64 {
	if f == nil || f.Disabled {
		for range links {
			dst = append(dst, 1)
		}
		return dst
	}
	base := f.fadeBase(subchannel, tMS/f.BlockMS)
	n := len(dst)
	if cap(dst)-n < len(links) {
		grown := make([]float64, n, n+len(links))
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:n+len(links)]
	out := dst[n:][:len(links)] // len(out) == len(links): elides the store bounds check
	for i, l := range links {
		// fadeRound inlined, with the ziggurat accept test open-coded so
		// the ~99% fast path never leaves the loop body; rejections fall
		// back to expFromHash, which redoes the (cheap) accept test and
		// therefore returns bit-identical values.
		h := base ^ l
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		j := uint32(h)
		zi := j & 0xff
		if j < zigK[zi] && j != 0 {
			out[i] = float64(j) * zigW[zi]
		} else {
			out[i] = expFromHash(h)
		}
	}
	return dst
}

// fadeBase is the hash state after absorbing the seed, the subchannel
// and the coherence block — the draw-stream prefix shared by every link
// in one batch row.
func (f *Fading) fadeBase(subchannel int, block int64) uint64 {
	h := uint64(f.Seed) ^ 0x9e3779b97f4a7c15
	h = fadeRound(h, uint64(subchannel)+0x5bd1e995)
	return fadeRound(h, uint64(block))
}

// fadeRound absorbs one value into the hash state: the same xor-
// multiply-shift round hash64 applies per element.
func fadeRound(h, v uint64) uint64 {
	h ^= v
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// remix advances the deterministic draw stream when the ziggurat needs
// more bits (tail and wedge rejections): a SplitMix64 step.
func remix(h uint64) uint64 {
	h += 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Ziggurat tables for the Exponential(1) density f(x) = exp(-x), 256
// layers, built once at init by the Marsaglia–Tsang recursion. zigK[i]
// is the integer acceptance threshold for layer i, zigW[i] scales a
// 32-bit uniform onto the layer's x extent, zigF[i] = exp(-x_i) for the
// wedge test. zigTailX is where the tail layer starts.
const zigTailX = 7.69711747013104972

var (
	zigK [256]uint32
	zigW [256]float64
	zigF [256]float64
)

func init() {
	const m = 1 << 32
	de, te := zigTailX, zigTailX
	const ve = 3.949659822581572e-3 // area of each layer (and the tail)
	q := ve / math.Exp(-de)
	zigK[0] = uint32(de / q * m)
	zigK[1] = 0
	zigW[0] = q / m
	zigW[255] = de / m
	zigF[0] = 1
	zigF[255] = math.Exp(-de)
	for i := 254; i >= 1; i-- {
		de = -math.Log(ve/de + math.Exp(-de))
		zigK[i+1] = uint32(de / te * m)
		te = de
		zigF[i] = math.Exp(-de)
		zigW[i] = de / m
	}
}

// expFromHash maps a 64-bit hash to an Exponential(1) deviate through
// the ziggurat. The value is a pure function of h — rejections re-mix h
// deterministically — so a draw is reproducible from its hash alone.
// The result is strictly positive: the j == 0 pattern (which would land
// exactly on 0) re-rolls, a 2^-32 per-draw bias that keeps log10 of a
// gain finite everywhere.
func expFromHash(h uint64) float64 {
	for {
		j := uint32(h)
		i := j & 0xff
		x := float64(j) * zigW[i]
		if j < zigK[i] && j != 0 {
			return x
		}
		h = remix(h)
		if j == 0 {
			continue
		}
		u := (float64(h>>11) + 1) / (1 << 53) // (0,1]
		if i == 0 {
			// Tail: x beyond zigTailX is itself exponential.
			return zigTailX - math.Log(u)
		}
		if zigF[i]+u*(zigF[i-1]-zigF[i]) < math.Exp(-x) {
			return x
		}
		h = remix(h)
	}
}
