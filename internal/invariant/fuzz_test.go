package invariant

import (
	"testing"
	"time"

	"cellfi/internal/trace"
)

// FuzzVerify feeds arbitrary bytes through the trace decoder and the
// invariant checker — the exact pipeline `cellfi-trace verify` runs on
// an untrusted file. Neither stage may panic: Decode already promises
// an error instead (FuzzDecode in internal/trace), and the checker
// must absorb whatever records a corrupted-but-decodable stream
// yields — wild arg values, impossible state edges, inverted budgets,
// negative channels.
func FuzzVerify(f *testing.F) {
	// Seed corpus: a clean run, each violation class, a corrupted tail
	// and a truncated stream.
	clean := []trace.Record{
		budget(0, 1, 21, 5*min, min),
		tx(sec, 1, 21),
		incumbent(2*sec, 22, 1),
		lease(3*sec, 1, 0, 2),
		apLife(4*sec, 2, 0),
		apLife(5*sec, 2, 1),
	}
	violating := []trace.Record{
		budget(0, 1, 21, 5*min, min),
		tx(min+sec, 1, 21),   // past budget
		tx(min+2*sec, 3, 21), // no lease
		incumbent(0, 21, 1),  // occupied
		{T: 1, Kind: trace.KindLeaseBudget, N: 3, // inverted budget
			Args: [trace.MaxArgs]int64{-5, 10, 20}},
	}
	f.Add(trace.Marshal(clean))
	f.Add(trace.Marshal(violating))
	enc := trace.Marshal(clean)
	f.Add(enc[:len(enc)/2]) // truncated mid-stream
	corrupt := append([]byte(nil), enc...)
	for i := len(corrupt) / 2; i < len(corrupt); i += 3 {
		corrupt[i] ^= 0x5a
	}
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte("CFTR"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _ := trace.Decode(data)
		c := &Checker{Deadline: time.Second, Slack: time.Millisecond, MaxViolations: 4}
		c.Feed(recs)
		if c.Records() != len(recs) {
			t.Fatalf("checker consumed %d of %d records", c.Records(), len(recs))
		}
		if c.Total() < len(c.Violations()) {
			t.Fatalf("total %d < retained %d", c.Total(), len(c.Violations()))
		}
		c.Err() // must not panic either way
	})
}
