package invariant

import (
	"testing"
	"time"

	"cellfi/internal/core"
	"cellfi/internal/trace"
)

const (
	sec = int64(time.Second)
	min = int64(time.Minute)
)

func budget(t int64, ap int32, ch, until, vacateBy int64) trace.Record {
	return trace.Record{T: t, AP: ap, Kind: trace.KindLeaseBudget, N: 3,
		Args: [trace.MaxArgs]int64{ch, until, vacateBy}}
}

func tx(t int64, ap int32, ch int64) trace.Record {
	return trace.Record{T: t, AP: ap, Kind: trace.KindRadioTX, N: 1,
		Args: [trace.MaxArgs]int64{ch}}
}

func lease(t int64, ap int32, from, to core.LeaseState) trace.Record {
	return trace.Record{T: t, AP: ap, Kind: trace.KindLease, N: 4,
		Args: [trace.MaxArgs]int64{int64(from), int64(to), 0, 21}}
}

func incumbent(t int64, ch, arrive int64) trace.Record {
	return trace.Record{T: t, AP: -1, Kind: trace.KindIncumbent, N: 3,
		Args: [trace.MaxArgs]int64{ch, arrive, 0}}
}

func apLife(t int64, ap int32, up int64) trace.Record {
	return trace.Record{T: t, AP: ap, Kind: trace.KindAPLife, N: 1,
		Args: [trace.MaxArgs]int64{up}}
}

func firstRule(t *testing.T, recs []trace.Record) string {
	t.Helper()
	v := Verify(recs)
	if v == nil {
		return ""
	}
	return v.Rule
}

func TestCleanStream(t *testing.T) {
	recs := []trace.Record{
		budget(0, 1, 21, 5*min, min),
		tx(sec, 1, 21),
		lease(2*sec, 1, core.StateGranted, core.StateRenewing),
		budget(2*sec, 1, 21, 5*min, 2*sec+min),
		tx(3*sec, 1, 21),
	}
	if v := Verify(recs); v != nil {
		t.Fatalf("clean stream flagged: %v", v)
	}
}

func TestTxWithoutLease(t *testing.T) {
	if got := firstRule(t, []trace.Record{tx(0, 1, 21)}); got != RuleTxWithoutLease {
		t.Fatalf("no-lease TX: got %q, want %q", got, RuleTxWithoutLease)
	}
	// Vacated clears the lease.
	recs := []trace.Record{
		budget(0, 1, 21, 5*min, min),
		lease(sec, 1, core.StateGracePeriod, core.StateVacated),
		tx(2*sec, 1, 21),
	}
	if got := firstRule(t, recs); got != RuleTxWithoutLease {
		t.Fatalf("TX after vacate: got %q, want %q", got, RuleTxWithoutLease)
	}
	// Wrong channel.
	recs = []trace.Record{budget(0, 1, 21, 5*min, min), tx(sec, 1, 22)}
	if got := firstRule(t, recs); got != RuleTxWithoutLease {
		t.Fatalf("wrong-channel TX: got %q, want %q", got, RuleTxWithoutLease)
	}
	// TX after a crash wiped the lease.
	recs = []trace.Record{budget(0, 1, 21, 5*min, min), apLife(sec, 1, 0), tx(2*sec, 1, 21)}
	if got := firstRule(t, recs); got != RuleTxWithoutLease {
		t.Fatalf("TX after crash: got %q, want %q", got, RuleTxWithoutLease)
	}
}

func TestTxPastVacateBudget(t *testing.T) {
	recs := []trace.Record{
		budget(0, 1, 21, 5*min, min),
		tx(min, 1, 21), // exactly at the boundary: allowed
		tx(min+sec, 1, 21),
	}
	v := Verify(recs)
	if v == nil || v.Rule != RuleTxPastVacateBudget {
		t.Fatalf("past-budget TX: got %v, want %s", v, RuleTxPastVacateBudget)
	}
	if v.Index != 2 {
		t.Fatalf("violation index = %d, want 2 (boundary TX must pass)", v.Index)
	}
}

func TestTxOnOccupiedChannel(t *testing.T) {
	// A fresh budget (database still answering, e.g. replica lagging the
	// registry) keeps the per-lease rules green; only the incumbent rule
	// catches the stale channel.
	recs := []trace.Record{
		budget(0, 1, 21, 10*min, min),
		incumbent(sec, 21, 1),
		tx(30*sec, 1, 21), // inside the evacuation deadline: allowed
		budget(40*sec, 1, 21, 10*min, 40*sec+min),
		tx(sec+min+sec, 1, 21), // deadline blown
	}
	v := Verify(recs)
	if v == nil || v.Rule != RuleTxOnOccupiedChannel {
		t.Fatalf("occupied-channel TX: got %v, want %s", v, RuleTxOnOccupiedChannel)
	}
	if v.Index != 4 {
		t.Fatalf("violation index = %d, want 4", v.Index)
	}
	// Departure clears the rule.
	recs = []trace.Record{
		budget(0, 1, 21, 10*min, min),
		incumbent(sec, 21, 1),
		incumbent(2*sec, 21, 0),
		tx(50*sec, 1, 21),
	}
	if v := Verify(recs); v != nil {
		t.Fatalf("TX after incumbent departed flagged: %v", v)
	}
	// Slack widens the cross-clock comparison.
	c := &Checker{Slack: 10 * time.Second}
	c.Feed([]trace.Record{
		budget(0, 1, 21, 10*min, 2*min),
		incumbent(0, 21, 1),
		tx(min+5*sec, 1, 21), // 65 s after arrival, inside 60 s + 10 s slack
	})
	if v := c.First(); v != nil {
		t.Fatalf("slack not applied: %v", v)
	}
}

func TestRenewalAfterExpiry(t *testing.T) {
	recs := []trace.Record{
		budget(0, 1, 21, 30*sec, 30*sec),
		lease(min, 1, core.StateGranted, core.StateRenewing),
	}
	if got := firstRule(t, recs); got != RuleRenewalAfterExpiry {
		t.Fatalf("late renewal: got %q, want %q", got, RuleRenewalAfterExpiry)
	}
	// A grace-period retry is not a renewal-after-expiry: the FSM is
	// already accounting for the failure.
	recs = []trace.Record{
		budget(0, 1, 21, 30*sec, 30*sec),
		lease(min, 1, core.StateGracePeriod, core.StateRenewing),
	}
	if got := firstRule(t, recs); got != "" {
		t.Fatalf("grace retry flagged as %q", got)
	}
}

func TestRestartResetsAP(t *testing.T) {
	recs := []trace.Record{
		budget(0, 1, 21, 5*min, min),
		apLife(sec, 1, 0),
		apLife(2*sec, 1, 1),
		budget(3*sec, 1, 23, 5*min, 3*sec+min),
		tx(4*sec, 1, 23),
	}
	if v := Verify(recs); v != nil {
		t.Fatalf("post-restart reacquisition flagged: %v", v)
	}
}

func TestPerAPIsolation(t *testing.T) {
	// AP 2's lease must not cover AP 1's transmissions.
	recs := []trace.Record{
		budget(0, 2, 21, 5*min, min),
		tx(sec, 1, 21),
	}
	if got := firstRule(t, recs); got != RuleTxWithoutLease {
		t.Fatalf("cross-AP lease leak: got %q, want %q", got, RuleTxWithoutLease)
	}
}

func TestTotalsAndBound(t *testing.T) {
	c := &Checker{MaxViolations: 2}
	for i := int64(0); i < 5; i++ {
		c.Record(tx(i, 1, 21))
	}
	if c.Total() != 5 {
		t.Fatalf("Total = %d, want 5", c.Total())
	}
	if len(c.Violations()) != 2 {
		t.Fatalf("retained %d violations, want 2", len(c.Violations()))
	}
	if c.Records() != 5 {
		t.Fatalf("Records = %d, want 5", c.Records())
	}
	if c.Err() == nil {
		t.Fatal("Err() = nil with violations present")
	}
}

func TestTee(t *testing.T) {
	c := &Checker{}
	if got := c.Tee(nil); got != trace.Recorder(c) {
		t.Fatal("Tee(nil) should return the checker itself")
	}
	ring := trace.NewRing(8)
	rec := c.Tee(ring)
	rec.Record(tx(0, 1, 21))
	if c.Total() != 1 {
		t.Fatalf("checker missed teed record: total=%d", c.Total())
	}
	if got := len(ring.Snapshot()); got != 1 {
		t.Fatalf("ring missed teed record: n=%d", got)
	}
}

func TestUnknownKindsIgnored(t *testing.T) {
	c := &Checker{}
	c.Feed([]trace.Record{
		{T: 0, AP: 1, Kind: trace.KindSimFire},
		{T: 1, AP: 1, Kind: trace.Kind(200), N: 4, Args: [trace.MaxArgs]int64{9, 9, 9, 9}},
		budget(2, 1, 21, 5*min, min),
		tx(3, 1, 21),
	})
	if v := c.First(); v != nil {
		t.Fatalf("unknown kinds broke the model: %v", v)
	}
}
