// Package invariant is the online regulatory verifier: a
// trace.Recorder that watches the flight-recorder stream as it is
// written and continuously checks the ETSI EN 301 598 catalog the whole
// system exists to uphold — no transmission without a valid unexpired
// lease, no transmission past the vacate budget, renewal before
// expiry, and evacuation of incumbent-occupied channels within the
// regulatory deadline.
//
// The checker follows the trace package's zero-cost contract: it is
// nil-default at emit sites, its Record method does not allocate on
// the non-violating path (per-AP and per-channel state cells are
// allocated once and reused), and it is not goroutine-safe — each run
// owns its checker, mirroring sim.Engine's threading model. Wire it
// inline with Tee to keep an existing recorder (ring spill, counters)
// running behind it, or replay a decoded stream offline with Verify
// (that is what `cellfi-trace verify` does).
//
// Evidence model: the lease FSM emits a KindLeaseBudget record —
// (channel, lease expiry, vacate-by) — on every entry into Granted,
// and scenario harnesses emit one KindRadioTX per AP per step while
// the radio gate is open. The checker replays budgets and bounds every
// transmission against the most recent one; KindIncumbent records
// (world-clock arrivals/departures of protected primaries) bound
// transmissions on occupied channels; KindAPLife crash records reset
// the per-AP model the way a power cycle resets the hardware. Because
// per-AP records are self-consistent in the AP's own (possibly
// skewed) clock, only the cross-clock incumbent rule needs Slack.
package invariant

import (
	"fmt"
	"time"

	"cellfi/internal/core"
	"cellfi/internal/trace"
)

// Rule identifiers. These are stable strings: they appear in runner
// telemetry JSON and in `cellfi-trace verify` output, and tests match
// on them.
const (
	// RuleTxWithoutLease: a KindRadioTX record with no live lease on
	// that channel — never granted, already vacated, expired, on a
	// different channel than leased, or after a crash.
	RuleTxWithoutLease = "tx-without-lease"
	// RuleTxPastVacateBudget: a transmission after the vacate-by
	// instant of the last granted budget — the lost-database-contact
	// fail-safe (ETSI EN 301 598: cease within the deadline of the
	// last successful database contact).
	RuleTxPastVacateBudget = "tx-past-vacate-budget"
	// RuleTxOnOccupiedChannel: a transmission on a channel a protected
	// incumbent arrived on more than Deadline (+Slack) earlier — the
	// evacuation guarantee the paper's Figure 6 experiment measures.
	RuleTxOnOccupiedChannel = "tx-on-occupied-channel"
	// RuleRenewalAfterExpiry: a renewal poll (Granted→Renewing edge)
	// that started only after the lease had already expired — the AP
	// let the lease lapse while nominally on the air.
	RuleRenewalAfterExpiry = "renewal-after-expiry"
)

// Violation is one failed invariant: the rule, the violating record
// and its zero-based index in the stream, and a human-readable detail
// line. The first violation in stream order is what fails a run.
type Violation struct {
	Rule string
	// Index is the zero-based position of Rec in the stream.
	Index int
	Rec   trace.Record
	// Detail explains the violation in terms of the evidence records
	// that preceded it.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at record %d (%s): %s", v.Rule, v.Index, v.Rec, v.Detail)
}

// apState is the checker's model of one access point, rebuilt from
// evidence records. The zero value means "alive, off-channel".
type apState struct {
	down     bool
	hasLease bool
	channel  int64
	until    int64 // lease expiry, ns in the AP's clock
	vacateBy int64 // min(until, last contact + deadline), ns in the AP's clock
}

// chanOcc tracks protected-incumbent occupancy of one channel: how
// many are present and when the current occupation began (world
// clock).
type chanOcc struct {
	count   int
	arrival int64
}

// Checker is the online verifier. The zero value is ready to use;
// configure Deadline/Slack before feeding records.
type Checker struct {
	// Deadline is the evacuation deadline for the incumbent-occupancy
	// rule; zero means core.VacateDeadline (the ETSI minute).
	Deadline time.Duration
	// Slack widens only the incumbent rule: incumbent arrivals are
	// stamped in the world clock while TX records carry the AP's
	// (possibly skewed) clock, so cross-clock comparisons need the
	// scenario's maximum skew as headroom. Per-AP rules compare
	// records from one clock and take no slack.
	Slack time.Duration
	// MaxViolations bounds how many violations are retained (the rest
	// are only counted); zero means 16.
	MaxViolations int

	n          int
	aps        map[int32]*apState
	occ        map[int64]*chanOcc
	violations []Violation
	total      int
}

func (c *Checker) deadlineNS() int64 {
	if c.Deadline > 0 {
		return int64(c.Deadline)
	}
	return int64(core.VacateDeadline)
}

func (c *Checker) ap(id int32) *apState {
	if c.aps == nil {
		c.aps = make(map[int32]*apState)
	}
	st := c.aps[id]
	if st == nil {
		st = &apState{}
		c.aps[id] = st
	}
	return st
}

func (c *Checker) fail(rule string, idx int, rec trace.Record, format string, args ...any) {
	c.total++
	max := c.MaxViolations
	if max <= 0 {
		max = 16
	}
	if len(c.violations) < max {
		c.violations = append(c.violations,
			Violation{Rule: rule, Index: idx, Rec: rec, Detail: fmt.Sprintf(format, args...)})
	}
}

// Record implements trace.Recorder: it updates the model from evidence
// records and checks transmission records against it. Unknown kinds
// pass through untouched, so the checker can sit in front of any
// stream.
func (c *Checker) Record(r trace.Record) {
	idx := c.n
	c.n++
	switch r.Kind {
	case trace.KindLeaseBudget:
		st := c.ap(r.AP)
		st.hasLease = true
		st.channel = r.Args[0]
		st.until = r.Args[1]
		st.vacateBy = r.Args[2]

	case trace.KindLease:
		st := c.ap(r.AP)
		from, to := core.LeaseState(r.Args[0]), core.LeaseState(r.Args[1])
		if from == core.StateGranted && to == core.StateRenewing &&
			st.hasLease && r.T > st.until {
			c.fail(RuleRenewalAfterExpiry, idx, r,
				"renewal started %v after lease expiry",
				time.Duration(r.T-st.until))
		}
		if to == core.StateVacated {
			st.hasLease = false
		}

	case trace.KindRadioTX:
		st := c.ap(r.AP)
		ch := r.Args[0]
		switch {
		case st.down:
			c.fail(RuleTxWithoutLease, idx, r, "radio on after crash")
		case !st.hasLease:
			c.fail(RuleTxWithoutLease, idx, r, "no lease held")
		case ch != st.channel:
			c.fail(RuleTxWithoutLease, idx, r,
				"transmitting on channel %d but lease is for %d", ch, st.channel)
		case r.T > st.vacateBy:
			c.fail(RuleTxPastVacateBudget, idx, r,
				"%v past vacate-by", time.Duration(r.T-st.vacateBy))
		case r.T > st.until:
			// Unreachable with well-formed budgets (vacate-by ≤
			// expiry) but fuzzed or corrupted streams can invert them.
			c.fail(RuleTxWithoutLease, idx, r,
				"%v past lease expiry", time.Duration(r.T-st.until))
		default:
			if o := c.occ[ch]; o != nil && o.count > 0 &&
				r.T > o.arrival+c.deadlineNS()+int64(c.Slack) {
				c.fail(RuleTxOnOccupiedChannel, idx, r,
					"incumbent arrived %v earlier (deadline %v, slack %v)",
					time.Duration(r.T-o.arrival), time.Duration(c.deadlineNS()), c.Slack)
			}
		}

	case trace.KindIncumbent:
		ch := r.Args[0]
		if c.occ == nil {
			c.occ = make(map[int64]*chanOcc)
		}
		o := c.occ[ch]
		if o == nil {
			o = &chanOcc{}
			c.occ[ch] = o
		}
		if r.Args[1] == 1 {
			if o.count == 0 {
				o.arrival = r.T
			}
			o.count++
		} else if o.count > 0 {
			o.count--
		}

	case trace.KindAPLife:
		st := c.ap(r.AP)
		st.hasLease = false
		st.down = r.Args[0] == 0
	}
}

// Tee returns a recorder that feeds the checker and then next. A nil
// next returns the checker itself, so emit sites stay single-branch.
func (c *Checker) Tee(next trace.Recorder) trace.Recorder {
	if next == nil {
		return c
	}
	return &tee{c: c, next: next}
}

type tee struct {
	c    *Checker
	next trace.Recorder
}

func (t *tee) Record(r trace.Record) {
	t.c.Record(r)
	t.next.Record(r)
}

// Feed replays a decoded record slice through the checker.
func (c *Checker) Feed(recs []trace.Record) {
	for _, r := range recs {
		c.Record(r)
	}
}

// First returns the first violation in stream order, nil when the
// stream is clean so far.
func (c *Checker) First() *Violation {
	if len(c.violations) == 0 {
		return nil
	}
	return &c.violations[0]
}

// Violations returns the retained violations (stream order, bounded
// by MaxViolations).
func (c *Checker) Violations() []Violation { return c.violations }

// Total returns how many violations occurred, including ones beyond
// the retention bound.
func (c *Checker) Total() int { return c.total }

// Records returns how many records the checker has consumed.
func (c *Checker) Records() int { return c.n }

// Err renders the stream's verdict as an error: nil when clean,
// otherwise the first violation (with the total count when more than
// one record violated).
func (c *Checker) Err() error {
	v := c.First()
	if v == nil {
		return nil
	}
	if c.total > 1 {
		return fmt.Errorf("invariant: %s (+%d more violations)", v, c.total-1)
	}
	return fmt.Errorf("invariant: %s", v)
}

// Verify replays a decoded stream through a fresh default checker and
// returns the first violation, nil when the stream is clean. Offline
// counterpart of wiring a Checker into a live run.
func Verify(recs []trace.Record) *Violation {
	c := &Checker{}
	c.Feed(recs)
	return c.First()
}
