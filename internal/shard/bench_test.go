package shard

import (
	"testing"

	"cellfi/internal/sim"
)

// newBenchCluster builds a K-shard ring workload: every window each
// shard sends one message per owned cell to the successor's owner, so
// each window exercises the full barrier path — deliver, parallel
// dispatch, collect, harvest, sort.
func newBenchCluster(k, cells int) (*Cluster, *ringWorld) {
	w := &ringWorld{cells: make([]int64, cells), k: k}
	for i := range w.cells {
		w.cells[i] = int64(i) * 7
	}
	c := New(Config{
		Shards: k,
		Window: win,
		Seed:   1,
		Handler: func(dst int, m Msg) {
			w.cells[m.Args[0]] += m.Args[1]
		},
	})
	for s := 0; s < k; s++ {
		s := s
		c.Shard(s).Engine.Every(win, func() {
			sh := c.Shard(s)
			at := sh.Engine.Now() + win
			for i := range w.cells {
				if w.owner(i) != s {
					continue
				}
				next := (i + 1) % len(w.cells)
				sh.Send(Msg{At: at, Dst: int32(w.owner(next)), Kind: 1,
					Args: [4]int64{int64(next), w.cells[i]%11 + 1}})
			}
		})
	}
	return c, w
}

// BenchmarkWindowBarrier measures one conservative window at K=4 with
// cross-shard traffic in flight. Steady state must be 0 allocs/op —
// message buffers, engine event slots and the pending queue all reach
// their high-water mark during warmup and recycle thereafter (the
// BENCH_shard.json barrier gate).
func BenchmarkWindowBarrier(b *testing.B) {
	c, _ := newBenchCluster(4, 64)
	defer c.Close()
	c.Run(8 * win) // warm buffers to the workload's high-water mark
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(c.Now() + win)
	}
}

// BenchmarkWindowBarrierIdle is the empty-window floor: no messages, no
// events, just the dispatch/park round trip — the fixed cost a sharded
// world pays per window regardless of load.
func BenchmarkWindowBarrierIdle(b *testing.B) {
	c := New(Config{Shards: 4, Window: win, Seed: 1})
	defer c.Close()
	c.Run(2 * win)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(c.Now() + win)
	}
}

var benchSink int64

// BenchmarkClusterDo measures the fork-join path used by netsim's
// sharded service sweep.
func BenchmarkClusterDo(b *testing.B) {
	c := New(Config{Shards: 4, Window: win, Seed: 1})
	defer c.Close()
	var acc [4]int64
	work := func(s int) {
		x := int64(0)
		for i := 0; i < 256; i++ {
			x += int64(i * s)
		}
		acc[s] += x
	}
	c.Do(work)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Do(work)
	}
	benchSink = acc[0]
	_ = sim.Time(0)
}
