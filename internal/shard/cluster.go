package shard

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"cellfi/internal/sim"
)

// Config sizes a cluster.
type Config struct {
	// Shards is the number of region shards (and worker goroutines);
	// values below 1 are raised to 1.
	Shards int
	// Window is the conservative lookahead L: engines advance in
	// lockstep windows of this length, and a message sent during a
	// window must not fire before the window ends. Must be positive.
	Window sim.Time
	// Seed derives each shard engine's seed deterministically.
	Seed int64
	// Handler consumes delivered messages; required if any shard
	// sends. See Handler for the threading contract.
	Handler Handler
	// AfterWindow, if set, runs single-threaded at every barrier after
	// messages are harvested, with every worker parked — the global
	// fold point (stat merges, trace emission, epoch bookkeeping).
	AfterWindow func(end sim.Time)
}

// Cluster drives K shard engines in conservative lockstep windows.
// Construct with New, drive with Run (or Do for plain fork-join), and
// release the worker goroutines with Close.
type Cluster struct {
	cfg    Config
	shards []*Shard

	// pending holds harvested, undelivered messages sorted by
	// (At, Src, Seq); the prefix with At < nextWindowEnd is delivered
	// at each barrier.
	pending []Msg

	now    sim.Time
	curEnd sim.Time

	jobs []chan job
	done chan doneMsg
	wg   sync.WaitGroup

	closed bool

	// Telemetry (see Stats).
	windows int64
	forks   int64
	msgs    int64
	wallNS  int64
	busyNS  []int64
	stallNS []int64
	winBusy []int64 // scratch: this window's busy time per shard
}

type job struct {
	end sim.Time
	fn  func(shard int)
}

type doneMsg struct {
	id   int
	busy time.Duration
}

// New builds a cluster of cfg.Shards engines and starts one persistent
// worker goroutine per shard. Each engine's seed derives from cfg.Seed
// and the shard ID, so shard-local randomness is decorrelated but
// reproducible. Call Close when done with the cluster.
func New(cfg Config) *Cluster {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Window <= 0 {
		panic("shard: non-positive window")
	}
	c := &Cluster{
		cfg:     cfg,
		shards:  make([]*Shard, cfg.Shards),
		jobs:    make([]chan job, cfg.Shards),
		done:    make(chan doneMsg, cfg.Shards),
		busyNS:  make([]int64, cfg.Shards),
		stallNS: make([]int64, cfg.Shards),
		winBusy: make([]int64, cfg.Shards),
	}
	for i := range c.shards {
		c.shards[i] = &Shard{
			ID:     i,
			Engine: sim.NewEngine(cfg.Seed + int64(i)*-0x61c8864680b583eb), // golden-ratio stride
			c:      c,
		}
		c.jobs[i] = make(chan job, 1)
		c.wg.Add(1)
		go c.worker(i)
	}
	return c
}

func (c *Cluster) worker(i int) {
	defer c.wg.Done()
	for j := range c.jobs[i] {
		t0 := time.Now()
		if j.fn != nil {
			j.fn(i)
		} else {
			c.shards[i].Engine.RunBefore(j.end)
		}
		c.done <- doneMsg{id: i, busy: time.Since(t0)}
	}
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard returns shard i for workload setup (scheduling region events,
// handler access to region state).
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Now returns the completed conservative horizon: every shard's engine
// has processed all events strictly before it.
func (c *Cluster) Now() sim.Time { return c.now }

// Run advances every shard to `until` in conservative windows. Window
// boundaries fall on multiples of Window from the start of time (the
// final window clamps to until), so splitting one Run into several
// shorter Runs over the same horizon executes the identical window
// sequence — determinism does not depend on the caller's chunking.
func (c *Cluster) Run(until sim.Time) {
	if c.closed {
		panic("shard: Run on a closed cluster")
	}
	for c.now < until {
		end := c.now + c.cfg.Window - (c.now % c.cfg.Window)
		if end > until {
			end = until
		}
		c.runWindow(end)
	}
}

// runWindow executes one conservative window ending at end: deliver
// due messages, run every shard in parallel, harvest staged messages,
// fold. This whole path is allocation-free once the message buffers
// have reached the workload's high-water mark (the BENCH_shard.json
// barrier gate).
func (c *Cluster) runWindow(end sim.Time) {
	c.curEnd = end
	c.deliver(end)
	t0 := time.Now()
	for i := range c.jobs {
		c.jobs[i] <- job{end: end}
	}
	c.collect(t0)
	c.harvest(end)
	if c.cfg.AfterWindow != nil {
		c.cfg.AfterWindow(end)
	}
	c.now = end
	c.windows++
}

// Do runs f(shardID) on every worker in parallel and blocks until all
// return — the plain deterministic fork-join entry for epoch-parallel
// workloads that partition work by shard but need no event exchange
// (netsim's fluid-service sweep). f must touch only shard-owned state.
func (c *Cluster) Do(f func(shard int)) {
	if c.closed {
		panic("shard: Do on a closed cluster")
	}
	t0 := time.Now()
	for i := range c.jobs {
		c.jobs[i] <- job{fn: f}
	}
	c.collect(t0)
	c.forks++
}

// collect waits for every worker to park and accounts busy and stall
// time: a shard's stall for the window is the gap between its own busy
// time and the wall time of the whole parallel section — the time it
// spent waiting for the slowest shard at the barrier.
func (c *Cluster) collect(t0 time.Time) {
	for range c.shards {
		d := <-c.done
		c.winBusy[d.id] = int64(d.busy)
	}
	w := int64(time.Since(t0))
	c.wallNS += w
	for i := range c.winBusy {
		c.busyNS[i] += c.winBusy[i]
		if s := w - c.winBusy[i]; s > 0 {
			c.stallNS[i] += s
		}
	}
}

// deliver invokes the handler for every pending message with At < end,
// in (At, Src, Seq) order, then drops them from the queue. Handlers
// run on the coordinator with all workers parked.
func (c *Cluster) deliver(end sim.Time) {
	n := 0
	for n < len(c.pending) && c.pending[n].At < end {
		n++
	}
	if n == 0 {
		return
	}
	if c.cfg.Handler == nil {
		panic(fmt.Sprintf("shard: %d messages pending with no Config.Handler", n))
	}
	for i := 0; i < n; i++ {
		c.cfg.Handler(int(c.pending[i].Dst), c.pending[i])
	}
	c.pending = c.pending[:copy(c.pending, c.pending[n:])]
}

// harvest moves every shard's staged messages into the pending queue
// and restores the (At, Src, Seq) order. Send already enforced
// At >= end, so nothing harvested here was due in the window that just
// ran.
func (c *Cluster) harvest(end sim.Time) {
	_ = end
	grew := false
	for _, s := range c.shards {
		if len(s.out) == 0 {
			continue
		}
		c.pending = append(c.pending, s.out...)
		c.msgs += int64(len(s.out))
		s.out = s.out[:0]
		grew = true
	}
	if grew {
		slices.SortFunc(c.pending, func(a, b Msg) int {
			switch {
			case a.At != b.At:
				if a.At < b.At {
					return -1
				}
				return 1
			case a.Src != b.Src:
				return int(a.Src) - int(b.Src)
			case a.Seq < b.Seq:
				return -1
			case a.Seq > b.Seq:
				return 1
			}
			return 0
		})
	}
}

// Close parks and releases the worker goroutines. The cluster's state
// and telemetry stay readable; Run and Do panic afterwards.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for i := range c.jobs {
		close(c.jobs[i])
	}
	c.wg.Wait()
}

// Stats is a telemetry snapshot of a cluster: how evenly the partition
// spread the work (per-shard utilization) and how much time the
// lockstep barriers cost (per-shard stall).
type Stats struct {
	// Shards is the shard count; Windows and Forks count Run windows
	// and Do fork-joins executed.
	Shards  int
	Windows int64
	Forks   int64
	// Msgs counts cross-shard messages harvested; Pending is the
	// undelivered backlog at snapshot time.
	Msgs    int64
	Pending int
	// WallNS is total wall time inside parallel sections. BusyNS[i]
	// is shard i's own execution time; StallNS[i] is the time shard i
	// spent parked waiting for slower shards at barriers.
	WallNS  int64
	BusyNS  []int64
	StallNS []int64
}

// Stats returns a copy of the cluster's counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		Shards:  len(c.shards),
		Windows: c.windows,
		Forks:   c.forks,
		Msgs:    c.msgs,
		Pending: len(c.pending),
		WallNS:  c.wallNS,
		BusyNS:  slices.Clone(c.busyNS),
		StallNS: slices.Clone(c.stallNS),
	}
}

// Utilization returns each shard's busy fraction of parallel-section
// wall time, in [0, 1]. A well-balanced partition reads near-equal
// values; a hot shard reads near 1 while the rest stall.
func (st Stats) Utilization() []float64 {
	out := make([]float64, st.Shards)
	if st.WallNS <= 0 {
		return out
	}
	for i, b := range st.BusyNS {
		u := float64(b) / float64(st.WallNS)
		if u > 1 {
			u = 1
		}
		out[i] = u
	}
	return out
}

// BarrierStallMS returns the total time shards spent waiting at
// barriers, summed across shards, in milliseconds.
func (st Stats) BarrierStallMS() float64 {
	var sum int64
	for _, s := range st.StallNS {
		sum += s
	}
	return float64(sum) / 1e6
}
