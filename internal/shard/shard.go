// Package shard executes one simulated world across many cores without
// giving up determinism: a conservative parallel discrete-event
// executor in the Chandy–Misra–Bryant tradition, specialized to the
// repo's windowed-lookahead workloads.
//
// The world is partitioned into K region shards. Each shard owns one
// sim.Engine and runs on its own persistent goroutine; the cluster
// advances all engines in lockstep conservative windows of a fixed
// lookahead L. Within a window [t, t+L) every shard processes its own
// events with no synchronization at all; cross-shard influence travels
// only as Msg values, and the conservative contract is that a message
// sent during a window must fire no earlier than the window's end —
// the spatial analogue is that interference and mobility cannot
// propagate between regions faster than the lookahead bound
// (propagation delay / coherence-block granularity, see
// propagation.Model.InterferenceRadius and the DESIGN.md section
// "Sharded execution and the determinism contract").
//
// # The determinism contract
//
// Same seed + same world ⇒ byte-identical behaviour at any shard
// count, regardless of OS scheduling. The argument has three legs:
//
//  1. Within a window, worker goroutines touch only shard-owned state,
//     and each sim.Engine is itself deterministic, so every shard's
//     window execution — including the messages it stages, in order —
//     is a pure function of the shard's state.
//  2. Messages are staged into per-shard ordered buffers stamped with
//     a per-source sequence number, harvested at the barrier in shard
//     order, and merged by the strict total order (At, Src, Seq).
//     The merged delivery sequence is therefore independent of which
//     worker finished first.
//  3. Delivery and the AfterWindow fold run single-threaded on the
//     coordinator while every worker is parked at the barrier, so
//     handlers may touch any shard's state without locks.
//
// Cross-shard-count equivalence (K=1 ≡ K=2 ≡ K=8) is a property of the
// workload on top: state updates exchanged between shards must be
// order-invariant (commutative integer deltas, idempotent sets) or
// carry their own total order. internal/metro is the worked example;
// its 50-seed trace-byte equivalence test pins the property the same
// way scheduler_ref_test.go pinned the scheduler rewrite.
//
// The steady-state barrier path — dispatch, busy/stall accounting,
// message harvest, sort, delivery — performs zero heap allocations
// once buffers have grown to the workload's high-water mark;
// BENCH_shard.json enforces it.
package shard

import (
	"fmt"

	"cellfi/internal/sim"
)

// Msg is one cross-shard event: a typed, fixed-size value (never a
// closure, so staging and merging stay allocation-free and the wire
// order is explicit). Kind and Args are workload-defined; the executor
// only reads At, Src, Dst and Seq.
type Msg struct {
	// At is the virtual time the message takes effect. The
	// conservative contract requires At >= the end of the window the
	// sender is executing; Send panics otherwise.
	At sim.Time
	// Src / Dst are shard IDs. Src and Seq are stamped by Send.
	Src, Dst int32
	// Kind discriminates message types within a workload.
	Kind int32
	// Seq is the per-source sequence number, the third key of the
	// deterministic merge order (At, Src, Seq).
	Seq uint64
	// Args is the kind-specific payload.
	Args [4]int64
}

// Handler consumes one delivered message. Handlers run single-threaded
// on the coordinator goroutine between windows (every worker parked),
// in merged (At, Src, Seq) order, so they may mutate any shard's state
// and schedule events on the destination engine at times >= m.At.
type Handler func(dst int, m Msg)

// Shard is one region of the partitioned world: an ID, its engine, and
// its staged outbound messages.
type Shard struct {
	// ID is the shard index in [0, Shards).
	ID int
	// Engine is the shard's discrete-event engine. Workload setup
	// schedules its region's events here before the first Run.
	Engine *sim.Engine

	c   *Cluster
	seq uint64
	out []Msg // staged this window, harvested at the barrier
}

// Send stages a cross-shard message. It may be called from the shard's
// own window execution (worker goroutine, shard-local) or from a
// barrier-time handler/fold (coordinator). The conservative lookahead
// rule is enforced here: a message must take effect no earlier than
// the end of the window being executed, otherwise it could not be
// delivered at a barrier before its firing time.
func (s *Shard) Send(m Msg) {
	if m.At < s.c.curEnd {
		panic(fmt.Sprintf("shard: conservative lookahead violation: shard %d sends at %v inside window ending %v",
			s.ID, m.At, s.c.curEnd))
	}
	if m.Dst < 0 || int(m.Dst) >= len(s.c.shards) {
		panic(fmt.Sprintf("shard: send to unknown shard %d", m.Dst))
	}
	s.seq++
	m.Src = int32(s.ID)
	m.Seq = s.seq
	s.out = append(s.out, m)
}

// Broadcast stages one copy of m per shard (self included), in
// ascending destination order. Replicated state — the metro world's
// per-AP load counters — is kept coherent this way: every replica
// applies the same deltas in the same merged order.
func (s *Shard) Broadcast(m Msg) {
	for d := range s.c.shards {
		m.Dst = int32(d)
		s.Send(m)
	}
}
