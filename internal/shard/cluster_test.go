package shard

import (
	"bytes"
	"testing"
	"time"

	"cellfi/internal/sim"
	"cellfi/internal/trace"
)

const win = 250 * time.Millisecond

// buildCascade schedules a deterministic event cascade on an engine:
// tickers that spawn follow-up events, exercising same-instant
// tie-breaks and window-boundary timestamps.
func buildCascade(e *sim.Engine, fired *int) {
	e.Every(win, func() {
		*fired++
		if e.Now() < 2*time.Second {
			e.After(win/5, func() { *fired++ })
			e.Schedule(e.Now()+win, func() { *fired++ }) // exactly on a boundary
		}
	})
	for i := 0; i < 16; i++ {
		at := sim.Time(i) * 333 * time.Millisecond
		e.Schedule(at, func() { *fired++ })
	}
}

// A K=1 cluster must reproduce a plain single-engine run exactly —
// same firing count, same trace bytes. This pins the windowed executor
// to today's engine semantics the way scheduler_ref_test.go pinned the
// scheduler rewrite.
func TestClusterK1MatchesPlainEngine(t *testing.T) {
	const until = 3 * time.Second

	var refBuf bytes.Buffer
	refRing := trace.NewRing(64)
	refRing.SpillTo(&refBuf)
	ref := sim.NewEngine(42)
	ref.SetRecorder(refRing)
	refFired := 0
	buildCascade(ref, &refFired)
	ref.RunBefore(until)
	if err := refRing.Flush(); err != nil {
		t.Fatal(err)
	}

	var cluBuf bytes.Buffer
	cluRing := trace.NewRing(64)
	cluRing.SpillTo(&cluBuf)
	c := New(Config{Shards: 1, Window: win, Seed: 42})
	defer c.Close()
	c.Shard(0).Engine.SetRecorder(cluRing)
	cluFired := 0
	buildCascade(c.Shard(0).Engine, &cluFired)
	c.Run(until)
	if err := cluRing.Flush(); err != nil {
		t.Fatal(err)
	}

	if refFired == 0 || cluFired != refFired {
		t.Fatalf("K=1 cluster fired %d callbacks, plain engine %d", cluFired, refFired)
	}
	if !bytes.Equal(refBuf.Bytes(), cluBuf.Bytes()) {
		t.Fatalf("K=1 cluster trace (%d bytes) differs from plain engine trace (%d bytes)",
			cluBuf.Len(), refBuf.Len())
	}
}

// ringWorld is the cross-shard test workload: N cells with integer
// state, each owned by one shard. Every window each shard reads its
// own cells and sends a commutative delta to the successor cell's
// owner; the handler applies deltas at barriers. Cell updates commute,
// so the final state must be identical at every shard count.
type ringWorld struct {
	cells []int64
	k     int
}

func (w *ringWorld) owner(cell int) int { return cell * w.k / len(w.cells) }

func runRing(t *testing.T, k, cells, windows int, seed int64) []int64 {
	t.Helper()
	w := &ringWorld{cells: make([]int64, cells), k: k}
	for i := range w.cells {
		w.cells[i] = int64(i)*7 + seed
	}
	c := New(Config{
		Shards: k,
		Window: win,
		Seed:   seed,
		Handler: func(dst int, m Msg) {
			w.cells[m.Args[0]] += m.Args[1]
		},
	})
	defer c.Close()
	for s := 0; s < k; s++ {
		s := s
		c.Shard(s).Engine.Every(win, func() {
			sh := c.Shard(s)
			at := sh.Engine.Now() + win
			for i := range w.cells {
				if w.owner(i) != s {
					continue
				}
				next := (i + 1) % len(w.cells)
				sh.Send(Msg{
					At:   at,
					Dst:  int32(w.owner(next)),
					Kind: 1,
					Args: [4]int64{int64(next), w.cells[i]%11 + 1},
				})
			}
		})
	}
	c.Run(sim.Time(windows) * win)
	st := c.Stats()
	if st.Windows != int64(windows) {
		t.Fatalf("k=%d: ran %d windows, want %d", k, st.Windows, windows)
	}
	if k > 1 && st.Msgs == 0 {
		t.Fatalf("k=%d: no cross-shard messages exchanged — vacuous test", k)
	}
	return w.cells
}

// The same seed must produce identical state at shard counts 1, 2, 4
// and 8 — worker scheduling must not be observable.
func TestClusterCrossShardCountInvariance(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		ref := runRing(t, 1, 24, 40, seed)
		for _, k := range []int{2, 4, 8} {
			got := runRing(t, k, 24, 40, seed)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d k=%d: cell %d = %d, want %d (k=1)", seed, k, i, got[i], ref[i])
				}
			}
		}
	}
}

// Repeated runs at the same shard count must be identical too (the
// plain determinism leg, meaningful under -race).
func TestClusterSameSeedDeterminism(t *testing.T) {
	a := runRing(t, 4, 32, 60, 9)
	b := runRing(t, 4, 32, 60, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d: run A %d, run B %d", i, a[i], b[i])
		}
	}
}

// Sending inside the current window violates the conservative
// lookahead contract and must panic rather than silently misorder.
func TestSendLookaheadViolationPanics(t *testing.T) {
	c := New(Config{Shards: 2, Window: win, Seed: 1, Handler: func(int, Msg) {}})
	defer c.Close()
	panicked := make(chan bool, 1)
	c.Shard(0).Engine.Schedule(10*time.Millisecond, func() {
		defer func() { panicked <- recover() != nil }()
		c.Shard(0).Send(Msg{At: 20 * time.Millisecond, Dst: 1})
	})
	c.Run(win)
	if !<-panicked {
		t.Fatal("in-window send did not panic")
	}
}

// Do is the fork-join face: every worker runs the function once, on
// its own shard index, and the call blocks until all return.
func TestClusterDo(t *testing.T) {
	c := New(Config{Shards: 4, Window: win, Seed: 1})
	defer c.Close()
	out := make([]int, 4)
	for round := 1; round <= 3; round++ {
		c.Do(func(s int) { out[s] += s + round })
	}
	want := []int{6, 9, 12, 15}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("shard %d: got %d, want %d", i, out[i], want[i])
		}
	}
	if st := c.Stats(); st.Forks != 3 {
		t.Fatalf("forks = %d, want 3", st.Forks)
	}
}

// Telemetry sanity: busy and wall accumulate, utilization stays in
// [0, 1], and stall never exceeds wall.
func TestClusterStats(t *testing.T) {
	c := New(Config{Shards: 3, Window: win, Seed: 1})
	defer c.Close()
	for s := 0; s < 3; s++ {
		c.Shard(s).Engine.Every(win/10, func() {
			x := 0
			for i := 0; i < 1000; i++ {
				x += i
			}
			_ = x
		})
	}
	c.Run(10 * win)
	st := c.Stats()
	if st.Shards != 3 || st.Windows != 10 {
		t.Fatalf("stats shape: %+v", st)
	}
	if st.WallNS <= 0 {
		t.Fatal("no wall time accounted")
	}
	for i, u := range st.Utilization() {
		if u < 0 || u > 1 {
			t.Fatalf("shard %d utilization %v out of [0,1]", i, u)
		}
		if st.BusyNS[i] <= 0 {
			t.Fatalf("shard %d accounted no busy time", i)
		}
		if st.StallNS[i] < 0 || st.StallNS[i] > st.WallNS {
			t.Fatalf("shard %d stall %d outside [0, wall %d]", i, st.StallNS[i], st.WallNS)
		}
	}
	if st.BarrierStallMS() < 0 {
		t.Fatal("negative barrier stall")
	}
}

// Chunked and single-shot Run over the same horizon must execute the
// identical window sequence.
func TestClusterRunChunkingInvariance(t *testing.T) {
	a := func() []int64 {
		w := runRing(t, 2, 16, 40, 3)
		return w
	}()
	w := &ringWorld{cells: make([]int64, 16), k: 2}
	for i := range w.cells {
		w.cells[i] = int64(i)*7 + 3
	}
	c := New(Config{Shards: 2, Window: win, Seed: 3, Handler: func(dst int, m Msg) {
		w.cells[m.Args[0]] += m.Args[1]
	}})
	defer c.Close()
	for s := 0; s < 2; s++ {
		s := s
		c.Shard(s).Engine.Every(win, func() {
			sh := c.Shard(s)
			at := sh.Engine.Now() + win
			for i := range w.cells {
				if w.owner(i) != s {
					continue
				}
				next := (i + 1) % len(w.cells)
				sh.Send(Msg{At: at, Dst: int32(w.owner(next)), Kind: 1,
					Args: [4]int64{int64(next), w.cells[i]%11 + 1}})
			}
		})
	}
	// Ragged chunks, including ones that cut windows short.
	for _, until := range []sim.Time{3 * win, 3*win + win/2, 17 * win, 40 * win} {
		c.Run(until)
	}
	for i := range a {
		if w.cells[i] != a[i] {
			t.Fatalf("cell %d: chunked %d, single-shot %d", i, w.cells[i], a[i])
		}
	}
}
