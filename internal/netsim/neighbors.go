package netsim

import (
	"cellfi/internal/geo"
)

// Interference neighborhoods for the epoch simulator. With
// Config.InterferenceRadiusM > 0 every interference-bearing scan — the
// SINR denominator, the PRACH census, the oracle's conflict edges, the
// hybrid deconfliction test, the handover sweep — ignores nodes beyond
// the significance radius (propagation.Model.InterferenceRadius). With
// Config.UseSpatialIndex also set, those scans run as uniform-grid
// queries instead of all-node loops.
//
// The truncation rule is the same inclusive squared-distance test in
// both modes, and every scan either visits survivors in ascending index
// order (float sums, handover ties) or is order-independent (census
// counts, conflict-edge sets), so indexed and brute-truncated runs are
// bit-identical — the property the 50-seed trace test pins down.
//
// Mobility reuses the existing epoch-invalidation contract: a moved
// client calls linkCache.Invalidate + refreshLinkBudget as before, and
// additionally clientGrid.Move; the grid answers only "who is near".
// Link budgets are refreshed only within the client's new neighborhood
// (plus its serving cell) — entries beyond the radius go stale, and
// every reader filters by the same radius, so stale entries are
// unreachable by construction.

// setupNeighborhoods wires truncation and (optionally) the spatial
// index after the topology and link budget exist.
func (n *Network) setupNeighborhoods() {
	r := n.Cfg.InterferenceRadiusM
	if r <= 0 {
		return
	}
	n.truncate = true
	n.sigRadius = r
	n.sigR2 = r * r
	if !n.Cfg.UseSpatialIndex {
		return
	}
	area := geo.Square(n.Topo.Params.AreaSide)
	n.cellGrid = geo.NewGrid(area, r)
	for i, p := range n.Cells {
		n.cellGrid.Insert(int32(i), p)
	}
	n.clientGrid = geo.NewGrid(area, r)
	for c, cl := range n.Clients {
		n.clientGrid.Insert(int32(c), cl.Pos)
	}
	n.activeFlag = make([]bool, len(n.Clients))
}

// cellNearPos applies the truncation predicate to cell j and a point.
func (n *Network) cellNearPos(j int, p geo.Point) bool {
	q := n.Cells[j]
	dx, dy := q.X-p.X, q.Y-p.Y
	return dx*dx+dy*dy <= n.sigR2
}

// clientNearPos applies the truncation predicate to client c and a point.
func (n *Network) clientNearPos(c int, p geo.Point) bool {
	q := n.Clients[c].Pos
	dx, dy := q.X-p.X, q.Y-p.Y
	return dx*dx+dy*dy <= n.sigR2
}

// markActive rebuilds the dense active-client flags the indexed PRACH
// census keys on.
func (n *Network) markActive(active [][]int) {
	if n.activeFlag == nil {
		return
	}
	for c := range n.activeFlag {
		n.activeFlag[c] = false
	}
	for j := range active {
		for _, c := range active[j] {
			n.activeFlag[c] = true
		}
	}
}
