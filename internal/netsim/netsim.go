// Package netsim is the system-level simulator behind the paper's
// large-scale evaluation (Section 6.3.4, Figure 9): a fluid, epoch-
// granularity model of many LTE cells sharing one TV channel under
// three management schemes — plain LTE (no interference management),
// CellFi's distributed controller, and the centralized oracle.
//
// Each 1-second interference-management epoch is simulated as a set of
// 100 ms fading blocks. Within an epoch every cell transmits in its
// permitted subchannels whenever it has backlogged clients; client
// rates follow per-subchannel SINR through the LTE CQI tables; and the
// CellFi controllers observe exactly what the paper's sensing gives
// them — PRACH-overheard client counts and CQI-drop interference
// verdicts with the measured 80% detection and 2% false-positive
// rates (Section 6.3.2) — before updating their subchannel sets.
package netsim

import (
	"math"
	"math/rand"
	"time"

	"cellfi/internal/core"
	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/netgraph"
	"cellfi/internal/oracle"
	"cellfi/internal/phy"
	"cellfi/internal/propagation"
	"cellfi/internal/shard"
	"cellfi/internal/topo"
	"cellfi/internal/trace"
)

// PackStreakEpochs is how many consecutive clean epochs a lower-index
// subchannel must show before the channel re-use heuristic moves onto
// it (Section 5.3's "contiguous period of time").
const PackStreakEpochs = 3

// Scheme selects the interference-management approach.
type Scheme int

const (
	// SchemeLTE: every cell uses the whole carrier, always.
	SchemeLTE Scheme = iota
	// SchemeCellFi: the paper's distributed controller.
	SchemeCellFi
	// SchemeOracle: centralized allocation on the true graph.
	SchemeOracle
	// SchemeRandomHop: CellFi's sensing and shares, but memoryless
	// uniform re-hopping instead of the exponential-bucket protocol
	// (the ablation baseline for Section 5.3's design).
	SchemeRandomHop
	// SchemeHybrid: the Section 7 extension — centralized
	// coordination among each provider's own cells, distributed
	// CellFi coordination across providers.
	SchemeHybrid
)

func (s Scheme) String() string {
	switch s {
	case SchemeLTE:
		return "lte"
	case SchemeCellFi:
		return "cellfi"
	case SchemeOracle:
		return "oracle"
	case SchemeRandomHop:
		return "random-hop"
	case SchemeHybrid:
		return "hybrid"
	}
	return "?"
}

// Config parametrizes a run.
type Config struct {
	Scheme Scheme
	BW     lte.Bandwidth
	TDD    lte.TDDConfig
	Seed   int64
	// BlocksPerEpoch is the number of fading blocks per 1 s epoch.
	BlocksPerEpoch int
	// APPowerDBm / ClientPowerDBm are the Section 6.3.4 values.
	APPowerDBm, ClientPowerDBm float64
	// DetectionRate / FalsePositiveRate inject the measured sensing
	// imperfections; PerfectSensing overrides both (ablation).
	DetectionRate, FalsePositiveRate float64
	PerfectSensing                   bool
	// PackingEnabled toggles the channel re-use heuristic (ablation).
	PackingEnabled bool
	// Lambda is the hopping bucket mean.
	Lambda float64
	// PRACHFloorRiseDB raises the PRACH detector's effective noise
	// floor above thermal: an AP overhearing *foreign* preambles has
	// no timing advance, no power control and a busy co-channel
	// uplink, so its detection floor sits well above the clean-lab
	// -10 dB figure. 20 dB puts the audibility radius at roughly the
	// interference-significant range (~650 m), which is exactly the
	// paper's argument for why PRACH audibility approximates "my
	// transmissions affect this client".
	PRACHFloorRiseDB float64
	// OracleInterferenceMarginDB: the oracle draws a conflict edge
	// when an interferer lands this many dB above the thermal floor
	// at a victim client (material SINR damage).
	OracleInterferenceMarginDB float64
	// NumProviders splits cells across operators for SchemeHybrid
	// (cell i belongs to provider i mod NumProviders). Default 2.
	NumProviders int
	// InterferenceRadiusM, when positive, truncates every interference
	// scan at the significance radius (see
	// propagation.Model.InterferenceRadius): transmitters farther from
	// a receiver contribute nothing. Zero keeps the historical
	// all-pairs scans.
	InterferenceRadiusM float64
	// UseSpatialIndex runs the truncated scans through uniform-grid
	// queries instead of all-node loops — bit-identical results, O(N)
	// to O(neighborhood) cost. Requires InterferenceRadiusM > 0.
	UseSpatialIndex bool
	// Trace, when non-nil, flight-records every cell's interference-
	// management decisions (im-share per epoch, im-hop per holding
	// change), timestamped with the epoch clock (epoch × 1 s). Applies
	// to schemes driven by core.Controller (cellfi, hybrid); the
	// memoryless random hopper is untraced.
	Trace trace.Recorder
	// Shards > 1 runs the fluid-service sweep (the per-epoch hot loop:
	// cells × clients × subchannels × fading blocks) fork-joined across
	// that many workers on an internal/shard cluster. Per-client service
	// is self-contained — each worker owns a contiguous cell range and
	// every read it shares (link budget, tx masks, fading hashes) is
	// frozen during the sweep — so results are bit-identical to the
	// sequential path. Call Network.Close to release the workers.
	Shards int
}

// DefaultConfig returns the paper's simulation settings for a scheme.
func DefaultConfig(s Scheme, seed int64) Config {
	return Config{
		Scheme:                     s,
		BW:                         lte.BW5MHz,
		TDD:                        lte.TDDConfig4,
		Seed:                       seed,
		BlocksPerEpoch:             10,
		APPowerDBm:                 30,
		ClientPowerDBm:             20,
		DetectionRate:              core.MeasuredDetectionRate,
		FalsePositiveRate:          core.MeasuredFalsePositiveRate,
		PackingEnabled:             true,
		Lambda:                     core.DefaultLambda,
		PRACHFloorRiseDB:           20,
		OracleInterferenceMarginDB: 20,
		NumProviders:               2,
	}
}

// Client is one mobile user in the simulation.
type Client struct {
	Index int
	Cell  int
	Pos   geo.Point
	// QueuedBits and DeliveredBits track the downlink fluid queue.
	QueuedBits    int64
	DeliveredBits int64
	// Backlogged clients refill automatically each epoch.
	Backlogged bool
}

// Network is one instantiated run.
type Network struct {
	Cfg   Config
	Topo  *topo.Topology
	Cells []geo.Point
	// ClientsOf[i] indexes into Clients.
	Clients   []*Client
	ClientsOf [][]int

	model  *propagation.Model
	fading *propagation.Fading
	// linkCache memoizes model.LinkLossDB per (cell, client) node
	// pair; mobility steps invalidate a client's links before the
	// budget refresh, so static clients never recompute shadowing.
	// Node IDs: cell i -> i, client c -> len(Cells)+c.
	linkCache *propagation.LinkCache
	rng       *rand.Rand

	// Cached link budget: rxRB[i][c] is the per-RB power client c
	// receives from cell i, before fading; rxRBmw is the same table in
	// milliwatts, feeding the linear-domain SINR kernel (the dB form
	// stays for threshold scans like cellNearPos).
	rxRB   [][]float64
	rxRBmw [][]float64
	// prachSNR[i][c]: SNR of client c's PRACH at cell i.
	prachSNR [][]float64

	controllers []core.IM
	// providers maps cell -> operator for SchemeHybrid.
	providers []int
	allowed   [][]int // per cell, current permitted subchannels
	epoch     int64
	// prevTxMask / prevActive carry the last epoch's transmissions
	// into the next controller update (sensing looks backward).
	prevTxMask [][]bool
	prevActive [][]int
	// cleanStreak[i][k] counts consecutive epochs cell i's clients all
	// observed subchannel k clean — the "contiguous period of time"
	// the channel re-use heuristic requires (Section 5.3).
	cleanStreak [][]int
	// mobility/mobile/handovers drive the Section 7 roaming extension.
	mobility  *MobilityConfig
	mobile    []mobileState
	handovers int

	// Interference neighborhood state (see neighbors.go). truncate is
	// set when InterferenceRadiusM > 0; the grids and the dense
	// active-client flags exist only with UseSpatialIndex.
	truncate                   bool
	sigRadius, sigR2           float64
	cellGrid, clientGrid       *geo.Grid
	cellScratch, clientScratch []int32
	activeFlag                 []bool

	// Parallel fluid-service plumbing (Cfg.Shards > 1): a fork-join
	// cluster plus one grid-query scratch slice per worker.
	cluster      *shard.Cluster
	shardScratch [][]int32

	// Hops accumulates controller hops for convergence reporting.
	Hops int
}

// New builds a network over a generated topology.
func New(t *topo.Topology, cfg Config) *Network {
	if cfg.BlocksPerEpoch <= 0 {
		cfg.BlocksPerEpoch = 10
	}
	n := &Network{
		Cfg:    cfg,
		Topo:   t,
		Cells:  t.APs,
		model:  propagation.DefaultUrban(cfg.Seed),
		fading: propagation.NewFading(cfg.Seed + 1),
		rng:    rand.New(rand.NewSource(cfg.Seed + 2)),
	}
	n.ClientsOf = make([][]int, len(t.APs))
	for i, pts := range t.Clients {
		for _, p := range pts {
			c := &Client{Index: len(n.Clients), Cell: i, Pos: p}
			n.Clients = append(n.Clients, c)
			n.ClientsOf[i] = append(n.ClientsOf[i], c.Index)
		}
	}
	n.linkCache = propagation.NewLinkCache(n.model, len(n.Cells)+len(n.Clients))
	n.precomputeLinkBudget()
	n.setupNeighborhoods()
	s := cfg.BW.Subchannels()
	n.allowed = make([][]int, len(n.Cells))
	n.cleanStreak = make([][]int, len(n.Cells))
	for i := range n.cleanStreak {
		n.cleanStreak[i] = make([]int, s)
	}
	switch cfg.Scheme {
	case SchemeLTE:
		all := make([]int, s)
		for k := range all {
			all[k] = k
		}
		for i := range n.allowed {
			n.allowed[i] = all
		}
	case SchemeCellFi:
		n.controllers = make([]core.IM, len(n.Cells))
		for i := range n.controllers {
			ctl := core.NewController(s, rand.New(rand.NewSource(cfg.Seed+100+int64(i))))
			ctl.PackingEnabled = cfg.PackingEnabled
			if cfg.Lambda > 0 {
				ctl.Lambda = cfg.Lambda
			}
			if cfg.Trace != nil {
				ctl.Trace, ctl.TraceAP = cfg.Trace, int32(i)
			}
			n.controllers[i] = ctl
			n.allowed[i] = nil // acquired during the first epoch
		}
	case SchemeRandomHop:
		n.controllers = make([]core.IM, len(n.Cells))
		for i := range n.controllers {
			n.controllers[i] = core.NewRandomHopper(s, rand.New(rand.NewSource(cfg.Seed+100+int64(i))))
			n.allowed[i] = nil
		}
	case SchemeHybrid:
		np := cfg.NumProviders
		if np < 1 {
			np = 2
		}
		n.providers = make([]int, len(n.Cells))
		for i := range n.providers {
			n.providers[i] = i % np
		}
		// Per-cell distributed controllers, exactly as CellFi; the
		// provider layer deconflicts on top each epoch.
		n.controllers = make([]core.IM, len(n.Cells))
		for i := range n.controllers {
			ctl := core.NewController(s, rand.New(rand.NewSource(cfg.Seed+100+int64(i))))
			ctl.PackingEnabled = cfg.PackingEnabled
			if cfg.Lambda > 0 {
				ctl.Lambda = cfg.Lambda
			}
			if cfg.Trace != nil {
				ctl.Trace, ctl.TraceAP = cfg.Trace, int32(i)
			}
			n.controllers[i] = ctl
			n.allowed[i] = nil
		}
	case SchemeOracle:
		// Computed per epoch from the active-client graph.
	}
	if cfg.Shards > 1 {
		n.cluster = shard.New(shard.Config{
			Shards: cfg.Shards,
			Window: time.Second, // unused: the sweep is pure fork-join (Do), never Run
			Seed:   cfg.Seed,
		})
		n.shardScratch = make([][]int32, cfg.Shards)
	}
	return n
}

// Close releases the fork-join workers (no-op without Cfg.Shards). The
// network stays readable.
func (n *Network) Close() {
	if n.cluster != nil {
		n.cluster.Close()
	}
}

// shardRange returns the contiguous cell range worker s owns.
func (n *Network) shardRange(s int) (lo, hi int) {
	k := n.cluster.Shards()
	nCells := len(n.Cells)
	return s * nCells / k, (s + 1) * nCells / k
}

func (n *Network) precomputeLinkBudget() {
	nf := 7.0
	perRB := n.Cfg.APPowerDBm - 10*math.Log10(float64(n.Cfg.BW.ResourceBlocks()))
	// PRACH occupies six RBs (1.08 MHz); the effective floor includes
	// the configured co-channel uplink interference rise.
	noisePRACH := propagation.NoiseDBm(6*lte.RBBandwidthHz, nf) + n.Cfg.PRACHFloorRiseDB
	prachTx := n.Cfg.ClientPowerDBm

	n.rxRB = make([][]float64, len(n.Cells))
	n.rxRBmw = make([][]float64, len(n.Cells))
	n.prachSNR = make([][]float64, len(n.Cells))
	for i, ap := range n.Cells {
		n.rxRB[i] = make([]float64, len(n.Clients))
		n.rxRBmw[i] = make([]float64, len(n.Clients))
		n.prachSNR[i] = make([]float64, len(n.Clients))
		for c, cl := range n.Clients {
			loss := n.linkCache.LossDB(i, n.clientNode(c), ap, cl.Pos)
			// Omnidirectional cells with 6 dBi gain both ways.
			n.rxRB[i][c] = perRB + 6 - loss
			n.rxRBmw[i][c] = propagation.DBmToMW(n.rxRB[i][c])
			n.prachSNR[i][c] = prachTx + 6 - loss - noisePRACH
		}
	}
}

// clientNode maps a client index into the link-cache node-ID space,
// past the cell IDs.
func (n *Network) clientNode(c int) int { return len(n.Cells) + c }

// LinkCacheStats exposes the link-gain cache counters for telemetry.
func (n *Network) LinkCacheStats() propagation.CacheStats {
	return n.linkCache.Stats()
}

// noiseRBDBm is the per-RB thermal noise floor.
func (n *Network) noiseRBDBm() float64 {
	return propagation.NoiseDBm(lte.RBBandwidthHz, 7)
}

// Backlog marks every client as infinitely backlogged.
func (n *Network) Backlog() {
	for _, c := range n.Clients {
		c.Backlogged = true
		c.QueuedBits = 1 << 40
	}
}

// AddBits enqueues downlink traffic for a client (dynamic workloads).
func (n *Network) AddBits(clientIndex int, bits int64) {
	n.Clients[clientIndex].QueuedBits += bits
}

// Allowed returns the subchannels cell i may currently use.
func (n *Network) Allowed(i int) []int { return n.allowed[i] }

// activeClients lists clients of cell i with queued data.
func (n *Network) activeClients(i int) []int {
	var out []int
	for _, c := range n.ClientsOf[i] {
		if n.Clients[c].QueuedBits > 0 {
			out = append(out, c)
		}
	}
	return out
}

// sinrParts computes the downlink SINR ingredients of client c from its
// cell in subchannel k during fading block b, given per-cell transmit
// masks: the received signal and the interference-plus-noise sum, both
// in mW per RB. Everything stays in the linear domain — one fading
// table probe per link, no per-interferer pow — and the pair feeds
// phy.LTECQIFromLinearSINR directly on the CQI paths. scratch is the
// grid-query buffer — per-worker when the fluid sweep runs sharded, so
// concurrent calls never share it.
func (n *Network) sinrParts(c, k int, b int64, txMask [][]bool, scratch *[]int32) (sig, den float64) {
	cl := n.Clients[c]
	i := cl.Cell
	tMS := n.epoch*1000 + b*100
	sig = n.rxRBmw[i][c] * n.fading.GainLinear(propagation.LinkID(i, c), k, tMS)
	den = propagation.DBmToMW(n.noiseRBDBm())
	if n.cellGrid != nil {
		// Grid query returns ascending cell indices — the same order
		// the scan below visits them — so the float sum is identical.
		*scratch = n.cellGrid.AppendWithin((*scratch)[:0], cl.Pos, n.sigRadius)
		for _, jj := range *scratch {
			j := int(jj)
			if j == i || !txMask[j][k] {
				continue
			}
			den += n.rxRBmw[j][c] * n.fading.GainLinear(propagation.LinkID(j, c), k, tMS)
		}
		return sig, den
	}
	for j := range n.Cells {
		if j == i || !txMask[j][k] {
			continue
		}
		if n.truncate && !n.cellNearPos(j, cl.Pos) {
			continue
		}
		den += n.rxRBmw[j][c] * n.fading.GainLinear(propagation.LinkID(j, c), k, tMS)
	}
	return sig, den
}

// cleanParts is sinrParts with no interference — the reference the CQI
// tracker's windowed max approximates.
func (n *Network) cleanParts(c, k int, b int64) (sig, den float64) {
	cl := n.Clients[c]
	tMS := n.epoch*1000 + b*100
	sig = n.rxRBmw[cl.Cell][c] * n.fading.GainLinear(propagation.LinkID(cl.Cell, c), k, tMS)
	return sig, propagation.DBmToMW(n.noiseRBDBm())
}

// EpochResult summarizes one stepped epoch.
type EpochResult struct {
	// ServedBits per client this epoch.
	ServedBits []int64
}

// Step advances one 1-second epoch and returns per-client service.
func (n *Network) Step() EpochResult {
	nCells := len(n.Cells)
	s := n.Cfg.BW.Subchannels()

	// Refill backlogged clients.
	for _, c := range n.Clients {
		if c.Backlogged && c.QueuedBits < 1<<30 {
			c.QueuedBits = 1 << 40
		}
	}

	if n.mobility != nil {
		n.stepMobility()
	}

	// Active sets for this epoch.
	active := make([][]int, nCells)
	for j := 0; j < nCells; j++ {
		active[j] = n.activeClients(j)
	}
	n.markActive(active)

	// Interference management runs at the start of the epoch: shares
	// follow the clients active now, observations come from the
	// previous epoch's radio state.
	if n.Cfg.Trace != nil {
		// Stamp IM records with the epoch clock (1 s per epoch).
		nowNS := n.epoch * int64(1e9)
		for _, ctl := range n.controllers {
			if c, ok := ctl.(*core.Controller); ok {
				c.TraceNowNS = nowNS
			}
		}
	}
	switch n.Cfg.Scheme {
	case SchemeOracle:
		n.allowed = n.oracleAllocate()
	case SchemeCellFi, SchemeRandomHop:
		n.updateControllers(n.prevTxMask, n.prevActive, active)
	case SchemeHybrid:
		n.updateHybrid(n.prevTxMask, n.prevActive, active)
	}

	// Transmit masks for this epoch: cell j emits data in k iff k is
	// allowed and it has at least one active client.
	txMask := make([][]bool, nCells)
	for j := 0; j < nCells; j++ {
		txMask[j] = make([]bool, s)
		if len(active[j]) == 0 {
			continue
		}
		for _, k := range n.allowed[j] {
			txMask[j][k] = true
		}
	}

	// Fluid service: each allowed subchannel's airtime is shared
	// equally among the cell's active clients; rates average over
	// fading blocks. Per-client service is self-contained, so the cell
	// loop fork-joins across the cluster when Cfg.Shards > 1 — each
	// worker owns a contiguous cell range (disjoint client sets) and a
	// private grid scratch, making the parallel sweep bit-identical to
	// this sequential one.
	res := EpochResult{ServedBits: make([]int64, len(n.Clients))}
	if n.cluster != nil {
		n.cluster.Do(func(s int) {
			lo, hi := n.shardRange(s)
			for j := lo; j < hi; j++ {
				n.serveCell(j, active[j], txMask, res.ServedBits, &n.shardScratch[s])
			}
		})
	} else {
		for j := 0; j < nCells; j++ {
			n.serveCell(j, active[j], txMask, res.ServedBits, &n.cellScratch)
		}
	}

	n.prevTxMask = txMask
	n.prevActive = active
	n.epoch++
	return res
}

// serveCell delivers one epoch of fluid service to cell j's active
// clients. It writes only those clients' queue/delivered counters and
// servedBits slots, so distinct cells may be served concurrently.
func (n *Network) serveCell(j int, active []int, txMask [][]bool, servedBits []int64, scratch *[]int32) {
	if len(active) == 0 {
		return
	}
	blocks := int64(n.Cfg.BlocksPerEpoch)
	nAct := float64(len(active))
	for _, c := range active {
		var rate float64 // bits per second for this client
		for _, k := range n.allowed[j] {
			var scRate float64
			for b := int64(0); b < blocks; b++ {
				cqi := phy.LTECQIFromLinearSINR(n.sinrParts(c, k, b, txMask, scratch))
				scRate += lte.SubchannelRateBps(n.Cfg.BW, n.Cfg.TDD, k, cqi)
			}
			rate += scRate / float64(blocks)
		}
		rate /= nAct
		served := int64(rate) // 1-second epoch
		cl := n.Clients[c]
		if served > cl.QueuedBits {
			served = cl.QueuedBits
		}
		cl.QueuedBits -= served
		cl.DeliveredBits += served
		servedBits[c] = served
	}
}

// detect applies the measured sensing error model to a ground-truth
// verdict.
func (n *Network) detect(truth bool) bool {
	if n.Cfg.PerfectSensing {
		return truth
	}
	if truth {
		return n.rng.Float64() < n.Cfg.DetectionRate
	}
	return n.rng.Float64() < n.Cfg.FalsePositiveRate
}

// updateControllers builds each cell's EpochInput — the target share
// from the clients active *now* (so a cell reacts before serving) and
// interference observations from the previous epoch's transmissions —
// and steps its controller.
func (n *Network) updateControllers(prevTxMask [][]bool, prevActive, nowActive [][]int) {
	s := n.Cfg.BW.Subchannels()
	lastBlock := int64(n.Cfg.BlocksPerEpoch - 1)
	for i, ctl := range n.controllers {
		// Shares count *active* clients: PDCCH-order RACH solicits
		// preambles every second and sightings expire after one
		// second (Section 5.1), so the census tracks current demand.
		own := len(nowActive[i])
		// PRACH census: active clients anywhere audible at >= -10 dB.
		// A count, so set equality is enough for the indexed path.
		sensed := 0
		if n.clientGrid != nil {
			n.clientScratch = n.clientGrid.AppendWithin(n.clientScratch[:0], n.Cells[i], n.sigRadius)
			for _, cc := range n.clientScratch {
				if n.activeFlag[cc] && n.prachSNR[i][cc] >= lte.PRACHDetectFloorDB {
					sensed++
				}
			}
		} else {
			for j := range n.Cells {
				for _, c := range nowActive[j] {
					if n.truncate && !n.clientNearPos(c, n.Cells[i]) {
						continue
					}
					if n.prachSNR[i][c] >= lte.PRACHDetectFloorDB {
						sensed++
					}
				}
			}
		}
		target := core.Share(s, own, sensed)

		in := core.EpochInput{
			TargetShare:   target,
			BadFrac:       map[int]float64{},
			Utility:       map[int]float64{},
			SensedBusy:    map[int]bool{},
			PackCandidate: map[int]int{},
		}
		if prevTxMask == nil || len(prevActive[i]) == 0 {
			// No observations from the previous epoch.
			ctl.Epoch(in)
			n.allowed[i] = ctl.Held()
			continue
		}

		nAct := float64(len(prevActive[i]))
		// Per-subchannel observations from this cell's clients' CQI
		// reports (LTE clients sense all subchannels, Section 5).
		cleanForAll := make([]bool, s)
		for k := 0; k < s; k++ {
			cleanForAll[k] = true
		}
		held := map[int]bool{}
		for _, k := range ctl.Held() {
			held[k] = true
		}
		for k := 0; k < s; k++ {
			anyBad := false
			badFrac := 0.0
			util := 0.0
			for _, c := range prevActive[i] {
				trueBad := n.clientSeesInterference(c, k, lastBlock, prevTxMask)
				det := n.detect(trueBad)
				if det {
					anyBad = true
					badFrac += 1 / nAct
					cleanForAll[k] = false
				}
				cqi := phy.LTECQIFromLinearSINR(n.sinrParts(c, k, lastBlock, prevTxMask, &n.cellScratch))
				util += lte.SubchannelRateBps(n.Cfg.BW, n.Cfg.TDD, k, cqi) / nAct
			}
			in.Utility[k] = util
			if held[k] {
				if badFrac > 0 {
					in.BadFrac[k] = badFrac
				}
			} else if anyBad {
				in.SensedBusy[k] = true
			}
		}
		// Maintain clean streaks; pack candidates need the target
		// clean for PackStreakEpochs consecutive epochs (the paper's
		// "contiguous period of time"), which keeps the heuristic
		// from thrashing on momentary quiet.
		for k := 0; k < s; k++ {
			if cleanForAll[k] {
				n.cleanStreak[i][k]++
			} else {
				n.cleanStreak[i][k] = 0
			}
		}
		for _, k := range ctl.Held() {
			for j := 0; j < k; j++ {
				if !held[j] && !in.SensedBusy[j] && n.cleanStreak[i][j] >= PackStreakEpochs {
					in.PackCandidate[k] = j
					break
				}
			}
		}
		before := ctl.HopCount()
		ctl.Epoch(in)
		n.Hops += ctl.HopCount() - before
		n.allowed[i] = ctl.Held()
	}
}

// clientSeesInterference is the ground truth behind a CQI-drop verdict:
// the client's SINR in subchannel k sits well below its interference-
// free reference (the 60% CQI drop of Section 6.3.2 maps to roughly a
// CQI-level gap; we use the same fraction on CQI directly).
func (n *Network) clientSeesInterference(c, k int, b int64, txMask [][]bool) bool {
	withI := phy.LTECQIFromLinearSINR(n.sinrParts(c, k, b, txMask, &n.cellScratch))
	clean := phy.LTECQIFromLinearSINR(n.cleanParts(c, k, b))
	if clean == 0 {
		return false
	}
	return float64(withI) < core.DetectDropFraction*float64(clean)
}

// oracleAllocate builds the true conflict graph over cells with active
// clients and hands it to the centralized allocator.
func (n *Network) oracleAllocate() [][]int {
	nCells := len(n.Cells)
	g := netgraph.New(nCells)
	noise := n.noiseRBDBm()
	threshold := noise + n.Cfg.OracleInterferenceMarginDB
	// Edge if cell j's signal at any of cell i's clients rises
	// materially above the noise floor (it would visibly degrade SINR
	// there). AddEdge is symmetric and idempotent, so the indexed and
	// brute scans only need to admit the same edge set — visit order
	// does not matter.
	if n.cellGrid != nil {
		for i := 0; i < nCells; i++ {
			for _, c := range n.ClientsOf[i] {
				n.cellScratch = n.cellGrid.AppendWithin(n.cellScratch[:0], n.Clients[c].Pos, n.sigRadius)
				for _, jj := range n.cellScratch {
					j := int(jj)
					if j != i && n.rxRB[j][c] >= threshold {
						g.AddEdge(i, j)
					}
				}
			}
		}
	} else {
		for i := 0; i < nCells; i++ {
			for j := 0; j < nCells; j++ {
				if i == j {
					continue
				}
				for _, c := range n.ClientsOf[i] {
					if n.truncate && !n.cellNearPos(j, n.Clients[c].Pos) {
						continue
					}
					if n.rxRB[j][c] >= threshold {
						g.AddEdge(i, j)
						break
					}
				}
			}
		}
	}
	s := n.Cfg.BW.Subchannels()
	for i := 0; i < nCells; i++ {
		own := len(n.activeClients(i))
		if own == 0 {
			g.Demand[i] = 0
			continue
		}
		// The oracle knows the true active-client count in i's
		// neighbourhood.
		contenders := own
		for _, j := range g.Neighbors(i) {
			contenders += len(n.activeClients(j))
		}
		g.Demand[i] = core.Share(s, own, contenders)
	}
	assign, _ := oracle.Allocate(g, s)
	out := make([][]int, nCells)
	for i := range out {
		out[i] = assign[i]
	}
	return out
}

// ThroughputsMbps returns per-client average throughput over the run so
// far (epochs so far).
func (n *Network) ThroughputsMbps() []float64 {
	out := make([]float64, len(n.Clients))
	if n.epoch == 0 {
		return out
	}
	for i, c := range n.Clients {
		out[i] = float64(c.DeliveredBits) / float64(n.epoch) / 1e6
	}
	return out
}

// Run steps the given number of epochs with backlogged traffic and
// returns final per-client throughputs in Mbps.
func (n *Network) Run(epochs int) []float64 {
	n.Backlog()
	for e := 0; e < epochs; e++ {
		n.Step()
	}
	return n.ThroughputsMbps()
}
