package netsim

import (
	"testing"

	"cellfi/internal/topo"
)

// The sharded fluid-service sweep must be bit-identical to the
// sequential path — same delivered bits, same throughput floats — for
// every scheme, with and without the spatial index, at several worker
// counts. The sweep is the only parallel section; controllers, sensing
// and mobility stay sequential, so any divergence here is a sharing bug
// in the sweep itself.
func TestShardedServiceBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, scheme := range []Scheme{SchemeCellFi, SchemeLTE, SchemeOracle} {
			tp := topo.Generate(topo.Paper(10, 4), seed)
			build := func(shards int) *Network {
				cfg := DefaultConfig(scheme, seed)
				cfg.Shards = shards
				cfg.InterferenceRadiusM = 900
				cfg.UseSpatialIndex = seed%2 == 0
				return New(tp, cfg)
			}
			ref := build(0)
			refThr := ref.Run(12)
			for _, k := range []int{2, 3, 8} {
				n := build(k)
				thr := n.Run(12)
				for c := range refThr {
					if thr[c] != refThr[c] {
						t.Fatalf("seed %d scheme %v shards %d: client %d throughput %v, sequential %v",
							seed, scheme, k, c, thr[c], refThr[c])
					}
					if n.Clients[c].DeliveredBits != ref.Clients[c].DeliveredBits {
						t.Fatalf("seed %d scheme %v shards %d: client %d delivered %d, sequential %d",
							seed, scheme, k, c, n.Clients[c].DeliveredBits, ref.Clients[c].DeliveredBits)
					}
				}
				n.Close()
			}
			ref.Close()
		}
	}
}

// Close must be idempotent and leave results readable.
func TestNetworkCloseIdempotent(t *testing.T) {
	tp := topo.Generate(topo.Paper(4, 3), 2)
	cfg := DefaultConfig(SchemeCellFi, 2)
	cfg.Shards = 4
	n := New(tp, cfg)
	thr := n.Run(5)
	n.Close()
	n.Close()
	var sum float64
	for _, v := range thr {
		sum += v
	}
	if sum <= 0 {
		t.Fatal("vacuous run: no throughput")
	}
	if got := n.ThroughputsMbps(); got[0] != thr[0] {
		t.Fatal("network unreadable after Close")
	}
}
