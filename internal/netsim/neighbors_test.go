package netsim

import (
	"bytes"
	"testing"

	"cellfi/internal/topo"
	"cellfi/internal/trace"
)

// equivRun drives one full netsim run with interference truncation at
// the given radius, optionally through the spatial index, with a trace
// recorder attached, and returns the trace bytes plus the per-client
// throughputs and handover count.
func equivRun(t *testing.T, scheme Scheme, seed int64, radius float64, indexed, mobile bool, epochs int) ([]byte, []float64, int) {
	t.Helper()
	tp := topo.Generate(topo.Paper(8, 4), seed)
	cfg := DefaultConfig(scheme, seed)
	cfg.InterferenceRadiusM = radius
	cfg.UseSpatialIndex = indexed
	var buf bytes.Buffer
	ring := trace.NewRing(0)
	ring.SpillTo(&buf)
	cfg.Trace = ring
	n := New(tp, cfg)
	if mobile {
		m := DefaultMobility()
		m.SpeedMps = 40 // cover real distance so neighborhoods change
		m.PauseEpochs = 0
		n.EnableMobility(m)
	}
	th := n.Run(epochs)
	if err := ring.Close(); err != nil {
		t.Fatalf("trace close: %v", err)
	}
	return buf.Bytes(), th, n.Handovers()
}

func compareModes(t *testing.T, scheme Scheme, seed int64, radius float64, mobile bool, epochs int) {
	t.Helper()
	traceB, thB, hoB := equivRun(t, scheme, seed, radius, false, mobile, epochs)
	traceI, thI, hoI := equivRun(t, scheme, seed, radius, true, mobile, epochs)
	if hoB != hoI {
		t.Fatalf("%v seed %d: handovers diverge: brute %d indexed %d", scheme, seed, hoB, hoI)
	}
	for c := range thB {
		if thB[c] != thI[c] {
			t.Fatalf("%v seed %d client %d: throughput diverges: brute %v indexed %v",
				scheme, seed, c, thB[c], thI[c])
		}
	}
	if !bytes.Equal(traceB, traceI) {
		t.Fatalf("%v seed %d: trace streams diverge (%d vs %d bytes)",
			scheme, seed, len(traceB), len(traceI))
	}
}

// TestIndexedEquivalence50Seeds is the acceptance criterion: across 50
// seeds, the grid-indexed interference path is bit-identical to the
// brute-force truncated path within the significance radius — trace
// streams byte-identical, throughputs exactly equal. The 800 m radius
// genuinely truncates on the 2000 m paper topology (cells regularly
// sit farther apart than that).
func TestIndexedEquivalence50Seeds(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		compareModes(t, SchemeCellFi, seed, 800, false, 6)
	}
}

// The other schemes exercise different truncated scans (oracle conflict
// edges, hybrid deconfliction, random hopping), and mobility exercises
// the grid Move + partial budget-refresh contract.
func TestIndexedEquivalenceAcrossSchemes(t *testing.T) {
	for _, scheme := range []Scheme{SchemeOracle, SchemeHybrid, SchemeRandomHop} {
		for seed := int64(1); seed <= 5; seed++ {
			compareModes(t, scheme, seed, 800, false, 6)
		}
	}
}

func TestIndexedEquivalenceUnderMobility(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		compareModes(t, SchemeCellFi, seed, 800, true, 10)
	}
}

// A radius beyond every pairwise distance must reproduce the historical
// all-pairs run exactly — truncation with nothing to truncate.
func TestTruncationVacuousAtLargeRadius(t *testing.T) {
	traceFull, thFull, _ := equivRun(t, SchemeCellFi, 7, 0, false, false, 6)
	traceHuge, thHuge, _ := equivRun(t, SchemeCellFi, 7, 1e9, true, false, 6)
	for c := range thFull {
		if thFull[c] != thHuge[c] {
			t.Fatalf("client %d: throughput diverges: full %v truncated-at-1e9 %v",
				c, thFull[c], thHuge[c])
		}
	}
	if !bytes.Equal(traceFull, traceHuge) {
		t.Fatalf("trace streams diverge (%d vs %d bytes)", len(traceFull), len(traceHuge))
	}
}
