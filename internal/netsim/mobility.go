package netsim

import (
	"math"

	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/propagation"
)

// Mobility and roaming (Section 7): "CellFi inherits the benefits of
// the LTE architecture. It provides seamless roaming across access
// points." This file adds random-waypoint client movement and
// strongest-cell handover to the epoch simulator: each epoch moving
// clients re-evaluate their serving cell, the link budget refreshes,
// and the PRACH census (hence the shares) tracks them automatically —
// no extra protocol is needed, which is exactly the paper's point.

// MobilityConfig shapes the random-waypoint process.
type MobilityConfig struct {
	// SpeedMps is the walking/driving speed in metres per second
	// (applied over the 1 s epoch).
	SpeedMps float64
	// PauseEpochs is how long a client rests at each waypoint.
	PauseEpochs int
	// HandoverMarginDB: a client switches cells only when another
	// cell beats the serving one by this margin (hysteresis, as real
	// A3 events use).
	HandoverMarginDB float64
}

// DefaultMobility returns pedestrian mobility with a 3 dB A3 margin.
func DefaultMobility() MobilityConfig {
	return MobilityConfig{SpeedMps: 1.5, PauseEpochs: 5, HandoverMarginDB: 3}
}

// mobileState tracks one client's waypoint walk.
type mobileState struct {
	waypoint geo.Point
	pause    int
}

// EnableMobility switches the network into mobile mode. Handovers
// reassign Clients[i].Cell and the ClientsOf index; the link budget is
// recomputed for moved clients each epoch.
func (n *Network) EnableMobility(cfg MobilityConfig) {
	n.mobility = &cfg
	n.mobile = make([]mobileState, len(n.Clients))
	rng := n.rng
	area := geo.Square(n.Topo.Params.AreaSide)
	for i := range n.mobile {
		n.mobile[i] = mobileState{waypoint: area.RandomPoint(rng)}
	}
}

// Handovers returns the cumulative cell switches since EnableMobility.
func (n *Network) Handovers() int { return n.handovers }

// stepMobility moves every client one epoch along its waypoint walk,
// refreshes its link budget, and runs strongest-cell handover with
// hysteresis. Called at the start of Step when mobility is enabled.
func (n *Network) stepMobility() {
	cfg := n.mobility
	rng := n.rng
	area := geo.Square(n.Topo.Params.AreaSide)
	for ci, cl := range n.Clients {
		st := &n.mobile[ci]
		if st.pause > 0 {
			st.pause--
		} else {
			d := cl.Pos.Dist(st.waypoint)
			step := cfg.SpeedMps // one 1 s epoch
			if d <= step {
				cl.Pos = st.waypoint
				st.waypoint = area.RandomPoint(rng)
				st.pause = cfg.PauseEpochs
			} else {
				ang := cl.Pos.Bearing(st.waypoint)
				cl.Pos = cl.Pos.Add(step*math.Cos(ang), step*math.Sin(ang))
			}
			// The client moved: drop its cached link gains before the
			// budget refresh recomputes them at the new position, and
			// rebucket it in the spatial index.
			n.linkCache.Invalidate(n.clientNode(ci))
			if n.clientGrid != nil {
				n.clientGrid.Move(int32(ci), cl.Pos)
			}
			n.refreshLinkBudget(ci)
		}
		// Strongest-cell handover with hysteresis. Serving is always a
		// fresh entry, so it seeds the scan; candidates beyond the
		// significance radius are invisible (their budget entries may
		// be stale, and no reader may touch them). Both modes visit
		// candidates in ascending cell order with a strict >, so ties
		// resolve identically.
		best, bestRx := cl.Cell, n.rxRB[cl.Cell][ci]
		if n.cellGrid != nil {
			n.cellScratch = n.cellGrid.AppendWithin(n.cellScratch[:0], cl.Pos, n.sigRadius)
			for _, jj := range n.cellScratch {
				if j := int(jj); n.rxRB[j][ci] > bestRx {
					best, bestRx = j, n.rxRB[j][ci]
				}
			}
		} else {
			for j := range n.Cells {
				if n.truncate && !n.cellNearPos(j, cl.Pos) {
					continue
				}
				if n.rxRB[j][ci] > bestRx {
					best, bestRx = j, n.rxRB[j][ci]
				}
			}
		}
		if best != cl.Cell && bestRx >= n.rxRB[cl.Cell][ci]+cfg.HandoverMarginDB {
			n.reassign(ci, best)
		}
	}
}

// refreshLinkBudget recomputes the cached budget for one (moved)
// client. Untruncated it covers every cell; truncated it covers the
// cells inside the client's new neighborhood plus the serving cell
// (always fresh for the handover seed). Entries outside that set go
// stale, but every reader filters by the same radius, so they are
// unreachable — and both modes apply identical refresh histories, so
// even stale values stay bit-identical across modes.
func (n *Network) refreshLinkBudget(ci int) {
	nf := 7.0
	perRB := n.Cfg.APPowerDBm - 10*math.Log10(float64(n.Cfg.BW.ResourceBlocks()))
	noisePRACH := propagation.NoiseDBm(6*lte.RBBandwidthHz, nf) + n.Cfg.PRACHFloorRiseDB
	cl := n.Clients[ci]
	refresh := func(i int) {
		loss := n.linkCache.LossDB(i, n.clientNode(ci), n.Cells[i], cl.Pos)
		n.rxRB[i][ci] = perRB + 6 - loss
		n.prachSNR[i][ci] = n.Cfg.ClientPowerDBm + 6 - loss - noisePRACH
	}
	switch {
	case n.cellGrid != nil:
		n.cellScratch = n.cellGrid.AppendWithin(n.cellScratch[:0], cl.Pos, n.sigRadius)
		serving := false
		for _, jj := range n.cellScratch {
			refresh(int(jj))
			serving = serving || int(jj) == cl.Cell
		}
		if !serving {
			refresh(cl.Cell)
		}
	case n.truncate:
		for i := range n.Cells {
			if i == cl.Cell || n.cellNearPos(i, cl.Pos) {
				refresh(i)
			}
		}
	default:
		for i := range n.Cells {
			refresh(i)
		}
	}
}

// reassign moves a client between cells' rosters.
func (n *Network) reassign(ci, to int) {
	from := n.Clients[ci].Cell
	out := n.ClientsOf[from][:0]
	for _, c := range n.ClientsOf[from] {
		if c != ci {
			out = append(out, c)
		}
	}
	n.ClientsOf[from] = out
	n.ClientsOf[to] = append(n.ClientsOf[to], ci)
	n.Clients[ci].Cell = to
	n.handovers++
}
