package netsim

import (
	"testing"

	"cellfi/internal/stats"
	"cellfi/internal/topo"
)

func runScheme(t *testing.T, s Scheme, seed int64, aps, clients, epochs int) []float64 {
	t.Helper()
	tp := topo.Generate(topo.Paper(aps, clients), seed)
	n := New(tp, DefaultConfig(s, seed))
	return n.Run(epochs)
}

func TestSingleCellFullThroughput(t *testing.T) {
	// One cell, one close client: the client should get a healthy
	// multi-Mbps rate regardless of scheme.
	tp := topo.Generate(topo.Paper(1, 1), 3)
	for _, s := range []Scheme{SchemeLTE, SchemeCellFi, SchemeOracle} {
		n := New(tp, DefaultConfig(s, 3))
		th := n.Run(15)
		if th[0] < 1 {
			t.Errorf("%v: lone client got %.2f Mbps, want multi-Mbps", s, th[0])
		}
	}
}

func TestCellFiAcquiresFullChannelWhenAlone(t *testing.T) {
	tp := topo.Generate(topo.Paper(1, 6), 4)
	n := New(tp, DefaultConfig(SchemeCellFi, 4))
	n.Run(5)
	if got := len(n.Allowed(0)); got != 13 {
		t.Fatalf("isolated CellFi cell holds %d subchannels, want all 13", got)
	}
}

func TestCellFiSharesBudgetWithNeighbour(t *testing.T) {
	// Two overlapping cells, equal clients: shares should settle near
	// half the channel each, and overlap should be rare after
	// convergence.
	p := topo.Paper(2, 6)
	p.AreaSide = 600 // force overlap
	p.MinAPSpacing = 300
	tp := topo.Generate(p, 5)
	n := New(tp, DefaultConfig(SchemeCellFi, 5))
	n.Run(30)
	h0, h1 := n.Allowed(0), n.Allowed(1)
	if len(h0) == 0 || len(h1) == 0 {
		t.Fatalf("a cell ended with nothing: %v / %v", h0, h1)
	}
	if len(h0)+len(h1) > 15 { // 13 + slack for the share floor
		t.Fatalf("shares %d+%d far exceed the channel", len(h0), len(h1))
	}
	in0 := map[int]bool{}
	for _, k := range h0 {
		in0[k] = true
	}
	overlap := 0
	for _, k := range h1 {
		if in0[k] {
			overlap++
		}
	}
	if overlap > 2 {
		t.Fatalf("cells still overlap on %d subchannels after 30 epochs (%v vs %v)",
			overlap, h0, h1)
	}
}

// The headline Figure 9 direction: in a dense deployment CellFi starves
// far fewer clients than unmanaged LTE, without losing total
// throughput, and tracks the oracle.
func TestCellFiReducesStarvationVsLTE(t *testing.T) {
	const aps, clients, epochs = 10, 6, 25
	const starveMbps = 0.05
	agg := func(s Scheme) (starved, total float64) {
		var sum float64
		var starvedN, n int
		for seed := int64(0); seed < 3; seed++ {
			th := runScheme(t, s, 10+seed, aps, clients, epochs)
			for _, v := range th {
				sum += v
				if v < starveMbps {
					starvedN++
				}
				n++
			}
		}
		return float64(starvedN) / float64(n), sum
	}
	lteStarved, lteTotal := agg(SchemeLTE)
	cfStarved, cfTotal := agg(SchemeCellFi)
	orStarved, _ := agg(SchemeOracle)

	if cfStarved >= lteStarved {
		t.Errorf("CellFi starved %.0f%%, LTE %.0f%% — no improvement",
			cfStarved*100, lteStarved*100)
	}
	if cfTotal < 0.6*lteTotal {
		t.Errorf("CellFi total throughput %.1f collapsed vs LTE %.1f", cfTotal, lteTotal)
	}
	if cfStarved > orStarved+0.15 {
		t.Errorf("CellFi starvation %.2f far above oracle %.2f", cfStarved, orStarved)
	}
}

func TestConvergenceHopsSettle(t *testing.T) {
	// The vast majority of hopping happens early (Section 6.3.4: most
	// APs hop only a few times). Sensing false positives keep a low
	// residual hop rate forever, so single seeds are noisy — aggregate
	// a few worlds and compare the first window against a late one.
	var early, late int
	for seed := int64(1); seed <= 5; seed++ {
		tp := topo.Generate(topo.Paper(8, 6), seed)
		n := New(tp, DefaultConfig(SchemeCellFi, seed))
		n.Backlog()
		for e := 0; e < 15; e++ {
			n.Step()
		}
		early += n.Hops
		for e := 0; e < 30; e++ { // let things settle further
			n.Step()
		}
		mark := n.Hops
		for e := 0; e < 15; e++ {
			n.Step()
		}
		late += n.Hops - mark
	}
	if late >= early {
		t.Errorf("hops not settling: %d early vs %d late (5 seeds)", early, late)
	}
}

func TestDynamicTrafficDrainsQueue(t *testing.T) {
	tp := topo.Generate(topo.Paper(2, 3), 7)
	n := New(tp, DefaultConfig(SchemeCellFi, 7))
	n.AddBits(0, 2_000_000) // 2 Mb to the first client
	var served int64
	for e := 0; e < 20 && n.Clients[0].QueuedBits > 0; e++ {
		r := n.Step()
		served += r.ServedBits[0]
	}
	if n.Clients[0].QueuedBits != 0 {
		t.Fatalf("queue not drained: %d bits left", n.Clients[0].QueuedBits)
	}
	if served != 2_000_000 {
		t.Fatalf("served %d bits, want exactly 2,000,000", served)
	}
	if n.Clients[0].DeliveredBits != 2_000_000 {
		t.Fatalf("delivered accounting wrong: %d", n.Clients[0].DeliveredBits)
	}
}

func TestIdleCellsDoNotInterfere(t *testing.T) {
	// Two overlapping cells; only cell 0 has traffic. Cell 1 idle
	// must not depress cell 0's throughput (no data interference).
	p := topo.Paper(2, 1)
	p.AreaSide = 500
	p.MinAPSpacing = 200
	tp := topo.Generate(p, 8)

	n1 := New(tp, DefaultConfig(SchemeLTE, 8))
	n1.AddBits(0, 1<<40)
	var withIdle int64
	for e := 0; e < 10; e++ {
		withIdle += n1.Step().ServedBits[0]
	}

	n2 := New(tp, DefaultConfig(SchemeLTE, 8))
	n2.AddBits(0, 1<<40)
	n2.AddBits(1, 1<<40)
	var withBusy int64
	for e := 0; e < 10; e++ {
		withBusy += n2.Step().ServedBits[0]
	}
	if withBusy >= withIdle {
		t.Fatalf("busy neighbour did not hurt: idle %d vs busy %d", withIdle, withBusy)
	}
}

func TestOracleAssignmentsConflictFree(t *testing.T) {
	p := topo.Paper(6, 4)
	p.AreaSide = 1200 // dense: everyone conflicts with someone
	tp := topo.Generate(p, 9)
	n := New(tp, DefaultConfig(SchemeOracle, 9))
	n.Backlog()
	n.Step()
	// Rebuild the oracle's own conflict rule and assert disjointness
	// across conflicting cells.
	threshold := n.noiseRBDBm() + n.Cfg.OracleInterferenceMarginDB
	for i := range n.Cells {
		for j := range n.Cells {
			if i >= j {
				continue
			}
			conflict := false
			for _, c := range n.ClientsOf[i] {
				if n.rxRB[j][c] >= threshold {
					conflict = true
				}
			}
			for _, c := range n.ClientsOf[j] {
				if n.rxRB[i][c] >= threshold {
					conflict = true
				}
			}
			if !conflict {
				continue
			}
			ini := map[int]bool{}
			for _, k := range n.Allowed(i) {
				ini[k] = true
			}
			for _, k := range n.Allowed(j) {
				if ini[k] {
					t.Fatalf("oracle gave conflicting cells %d and %d shared subchannel %d", i, j, k)
				}
			}
		}
	}
}

func TestSchemeStrings(t *testing.T) {
	if SchemeLTE.String() != "lte" || SchemeCellFi.String() != "cellfi" || SchemeOracle.String() != "oracle" {
		t.Fatal("scheme names wrong")
	}
}

func TestThroughputCDFSane(t *testing.T) {
	th := runScheme(t, SchemeCellFi, 11, 6, 6, 15)
	c := stats.NewCDF(th)
	if c.Max() > 14 {
		t.Fatalf("client throughput %.1f Mbps exceeds the 5 MHz TDD ceiling", c.Max())
	}
	if c.Mean() <= 0 {
		t.Fatal("zero mean throughput across the network")
	}
}

func BenchmarkCellFiEpoch(b *testing.B) {
	tp := topo.Generate(topo.Paper(14, 6), 1)
	n := New(tp, DefaultConfig(SchemeCellFi, 1))
	n.Backlog()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

func TestRunsDeterministic(t *testing.T) {
	run := func() []float64 {
		tp := topo.Generate(topo.Paper(5, 4), 21)
		n := New(tp, DefaultConfig(SchemeCellFi, 21))
		return n.Run(12)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at client %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestRandomHopSchemeRuns(t *testing.T) {
	th := runScheme(t, SchemeRandomHop, 31, 6, 6, 15)
	c := stats.NewCDF(th)
	if c.Mean() <= 0 {
		t.Fatal("random-hop network delivered nothing")
	}
	if c.Max() > 14 {
		t.Fatalf("rate %f exceeds the carrier ceiling", c.Max())
	}
}

// The ablation direction: bucketed CellFi hops less than the
// memoryless random hopper under identical topology and sensing.
func TestRandomHopChurnsMore(t *testing.T) {
	hops := func(s Scheme) int {
		tp := topo.Generate(topo.Paper(10, 6), 33)
		n := New(tp, DefaultConfig(s, 33))
		n.Run(25)
		return n.Hops
	}
	cf, rh := hops(SchemeCellFi), hops(SchemeRandomHop)
	if rh <= cf {
		t.Fatalf("random hopper hopped less (%d) than CellFi (%d)", rh, cf)
	}
}

func TestHybridSchemeRuns(t *testing.T) {
	tp := topo.Generate(topo.Paper(8, 6), 35)
	n := New(tp, DefaultConfig(SchemeHybrid, 35))
	th := n.Run(20)
	c := stats.NewCDF(th)
	if c.Mean() <= 0 {
		t.Fatal("hybrid network delivered nothing")
	}
	// Intra-provider assignments must be conflict-free: two cells of
	// the same provider that conflict may not share a subchannel.
	threshold := n.noiseRBDBm() + n.Cfg.OracleInterferenceMarginDB
	for i := range n.Cells {
		for j := range n.Cells {
			if i >= j || n.providers[i] != n.providers[j] {
				continue
			}
			conflict := false
			for _, c := range n.ClientsOf[i] {
				if n.rxRB[j][c] >= threshold {
					conflict = true
				}
			}
			for _, c := range n.ClientsOf[j] {
				if n.rxRB[i][c] >= threshold {
					conflict = true
				}
			}
			if !conflict {
				continue
			}
			ini := map[int]bool{}
			for _, k := range n.Allowed(i) {
				ini[k] = true
			}
			for _, k := range n.Allowed(j) {
				if ini[k] {
					t.Fatalf("same-provider conflicting cells %d and %d share subchannel %d", i, j, k)
				}
			}
		}
	}
}

// Hybrid should not starve more clients than plain CellFi: the
// centralized intra-provider stage can only help.
func TestHybridAtLeastAsGoodAsCellFi(t *testing.T) {
	starved := func(s Scheme) int {
		n := 0
		for seed := int64(0); seed < 3; seed++ {
			tp := topo.Generate(topo.Paper(10, 6), 40+seed)
			net := New(tp, DefaultConfig(s, 40+seed))
			for _, v := range net.Run(20) {
				if v < 0.05 {
					n++
				}
			}
		}
		return n
	}
	cf, hy := starved(SchemeCellFi), starved(SchemeHybrid)
	if hy > cf+6 { // small tolerance: different random draws
		t.Fatalf("hybrid starved %d clients vs CellFi's %d", hy, cf)
	}
}

func TestZeroClientTopology(t *testing.T) {
	tp := topo.Generate(topo.Paper(3, 0), 50)
	for _, s := range []Scheme{SchemeLTE, SchemeCellFi, SchemeOracle, SchemeHybrid, SchemeRandomHop} {
		n := New(tp, DefaultConfig(s, 50))
		th := n.Run(3)
		if len(th) != 0 {
			t.Fatalf("%v: throughputs for zero clients: %v", s, th)
		}
	}
}

func TestSingleEpochRun(t *testing.T) {
	tp := topo.Generate(topo.Paper(2, 2), 51)
	n := New(tp, DefaultConfig(SchemeCellFi, 51))
	th := n.Run(1)
	if len(th) != 4 {
		t.Fatalf("throughput vector length %d", len(th))
	}
}

func TestMixedIdleCells(t *testing.T) {
	// Only the first cell's clients have traffic: others must not
	// accumulate deliveries, and the busy cell must thrive.
	tp := topo.Generate(topo.Paper(4, 3), 52)
	n := New(tp, DefaultConfig(SchemeCellFi, 52))
	for _, ci := range n.ClientsOf[0] {
		n.Clients[ci].Backlogged = true
		n.Clients[ci].QueuedBits = 1 << 40
	}
	for e := 0; e < 10; e++ {
		n.Step()
	}
	for i := 1; i < 4; i++ {
		for _, ci := range n.ClientsOf[i] {
			if n.Clients[ci].DeliveredBits != 0 {
				t.Fatalf("idle client %d delivered bits", ci)
			}
		}
	}
	var busy int64
	for _, ci := range n.ClientsOf[0] {
		busy += n.Clients[ci].DeliveredBits
	}
	if busy == 0 {
		t.Fatal("busy cell starved while alone on the channel")
	}
	// An alone-active CellFi cell should expand toward the whole
	// channel (everyone else's clients are inactive, so the PRACH
	// census sees only its own).
	if got := len(n.Allowed(0)); got < 10 {
		t.Fatalf("lone busy cell holds only %d subchannels", got)
	}
}

func TestUplinkThroughputs(t *testing.T) {
	tp := topo.Generate(topo.Paper(6, 4), 60)
	cf := New(tp, DefaultConfig(SchemeCellFi, 60))
	ul := cf.UplinkThroughputs(15)
	if len(ul) != 24 {
		t.Fatalf("uplink vector length %d", len(ul))
	}
	positive := 0
	for _, v := range ul {
		if v < 0 {
			t.Fatal("negative uplink throughput")
		}
		if v > 4 { // 5 MHz TDD uplink fraction is 0.2: ceiling ~3.5 Mbps
			t.Fatalf("uplink %f Mbps exceeds the TDD uplink ceiling", v)
		}
		if v > 0.01 {
			positive++
		}
	}
	if positive < len(ul)/2 {
		t.Fatalf("only %d/%d clients got uplink service", positive, len(ul))
	}
}

// The reservations help uplink too: CellFi's uplink starves fewer
// clients than unmanaged LTE's (where every cell's clients splatter
// the whole carrier).
func TestUplinkCellFiVsLTE(t *testing.T) {
	starved := func(s Scheme) int {
		n := 0
		for seed := int64(0); seed < 3; seed++ {
			tp := topo.Generate(topo.Paper(10, 6), 61+seed)
			net := New(tp, DefaultConfig(s, 61+seed))
			for _, v := range net.UplinkThroughputs(15) {
				if v < 0.01 {
					n++
				}
			}
		}
		return n
	}
	cf, plain := starved(SchemeCellFi), starved(SchemeLTE)
	if cf >= plain {
		t.Fatalf("CellFi uplink starved %d >= LTE %d", cf, plain)
	}
}

func TestMobilityHandoversHappen(t *testing.T) {
	tp := topo.Generate(topo.Paper(8, 4), 70)
	n := New(tp, DefaultConfig(SchemeCellFi, 70))
	mob := DefaultMobility()
	mob.SpeedMps = 40 // vehicular, to force handovers quickly
	mob.PauseEpochs = 0
	n.EnableMobility(mob)
	th := n.Run(40)
	if n.Handovers() == 0 {
		t.Fatal("vehicular clients never handed over")
	}
	// Rosters stay consistent.
	seen := map[int]bool{}
	total := 0
	for i, cs := range n.ClientsOf {
		for _, c := range cs {
			if n.Clients[c].Cell != i {
				t.Fatalf("client %d in roster %d but Cell=%d", c, i, n.Clients[c].Cell)
			}
			if seen[c] {
				t.Fatalf("client %d in two rosters", c)
			}
			seen[c] = true
			total++
		}
	}
	if total != len(n.Clients) {
		t.Fatalf("rosters cover %d of %d clients", total, len(n.Clients))
	}
	// Service continues under mobility.
	starved := 0
	for _, v := range th {
		if v < 0.05 {
			starved++
		}
	}
	if starved > len(th)/2 {
		t.Fatalf("%d/%d mobile clients starved — roaming broken", starved, len(th))
	}
}

func TestMobilityHysteresis(t *testing.T) {
	// Pedestrian speed with a big margin: handovers should be rare.
	tp := topo.Generate(topo.Paper(8, 4), 71)
	slow := New(tp, DefaultConfig(SchemeCellFi, 71))
	cfg := DefaultMobility()
	cfg.HandoverMarginDB = 12
	slow.EnableMobility(cfg)
	slow.Run(30)

	tp2 := topo.Generate(topo.Paper(8, 4), 71)
	eager := New(tp2, DefaultConfig(SchemeCellFi, 71))
	cfg2 := DefaultMobility()
	cfg2.HandoverMarginDB = 0
	eager.EnableMobility(cfg2)
	eager.Run(30)

	if slow.Handovers() > eager.Handovers() {
		t.Fatalf("hysteresis increased handovers: %d vs %d", slow.Handovers(), eager.Handovers())
	}
}

func TestMobilityDeterministic(t *testing.T) {
	run := func() (int, float64) {
		tp := topo.Generate(topo.Paper(5, 3), 72)
		n := New(tp, DefaultConfig(SchemeCellFi, 72))
		n.EnableMobility(DefaultMobility())
		th := n.Run(15)
		var sum float64
		for _, v := range th {
			sum += v
		}
		return n.Handovers(), sum
	}
	h1, s1 := run()
	h2, s2 := run()
	if h1 != h2 || s1 != s2 {
		t.Fatal("mobile runs not deterministic")
	}
}
