package netsim

import (
	"math"

	"cellfi/internal/lte"
	"cellfi/internal/phy"
	"cellfi/internal/propagation"
)

// Uplink management. Section 5 notes that "the uplink is much less
// saturated; yet, the uplink can be managed similarly". CellFi runs
// TDD on a single channel, so the subchannel reservations the
// downlink controller converges to govern uplink subframes too: a
// cell grants PUSCH only inside its held set, and uplink interference
// at an access point comes from *clients* of other cells transmitting
// in the same subchannel.
//
// UplinkThroughputs runs the normal (downlink-driven) epoch loop so
// the controllers converge exactly as usual, and alongside it
// evaluates a saturated-uplink fluid model over the same reservations.

// ulRxRB returns the per-RB power AP i receives from client c when the
// client concentrates its power in `rbs` resource blocks.
func (n *Network) ulRxRB(i, c, rbs int) float64 {
	// Recover the symmetric link loss from the cached downlink budget.
	perRBDown := n.Cfg.APPowerDBm - 10*math.Log10(float64(n.Cfg.BW.ResourceBlocks()))
	loss := perRBDown + 6 - n.rxRB[i][c]
	perRBUp := n.Cfg.ClientPowerDBm - 10*math.Log10(float64(rbs))
	return perRBUp + 6 - loss
}

// UplinkThroughputs runs the backlogged scenario for the given number
// of epochs and returns per-client *uplink* throughput in Mbps, using
// the reservations the (downlink) interference management converges
// to. Each active client transmits across its cell's held subchannels
// in its time share; interference at an AP in subchannel k is the
// epoch's scheduled client of every other cell active in k.
func (n *Network) UplinkThroughputs(epochs int) []float64 {
	n.Backlog()
	delivered := make([]float64, len(n.Clients))

	for e := 0; e < epochs; e++ {
		n.Step() // drive the controllers and downlink exactly as usual

		// Active sets and this epoch's representative uplink client
		// per cell (the scheduler rotates; we rotate per epoch).
		rep := make([]int, len(n.Cells))
		active := make([][]int, len(n.Cells))
		for j := range n.Cells {
			active[j] = n.activeClients(j)
			if len(active[j]) > 0 {
				rep[j] = active[j][e%len(active[j])]
			} else {
				rep[j] = -1
			}
		}
		inSet := make([]map[int]bool, len(n.Cells))
		for j := range n.Cells {
			inSet[j] = map[int]bool{}
			for _, k := range n.allowed[j] {
				inSet[j][k] = true
			}
		}
		noise := propagation.NoiseDBm(lte.RBBandwidthHz, 7)

		for i := range n.Cells {
			if len(active[i]) == 0 {
				continue
			}
			nAct := float64(len(active[i]))
			for _, c := range active[i] {
				var rate float64
				for _, k := range n.allowed[i] {
					// The client concentrates power in this grant
					// (one subchannel's RBs at a time).
					rbs := n.Cfg.BW.SubchannelRBs(k)
					sig := n.ulRxRB(i, c, rbs)
					den := propagation.DBmToMW(noise)
					for j := range n.Cells {
						if j == i || rep[j] < 0 || !inSet[j][k] {
							continue
						}
						// Same truncation predicate as the downlink
						// scans (and it keeps stale budget entries of
						// far-away moved clients unreachable here too).
						if n.truncate && !n.clientNearPos(rep[j], n.Cells[i]) {
							continue
						}
						den += propagation.DBmToMW(n.ulRxRB(i, rep[j], rbs))
					}
					sinr := sig - propagation.MWToDBm(den)
					cqi := phy.LTECQIFromSINR(sinr)
					bits := float64(lte.TransportBlockBits(cqi, rbs))
					rate += bits / lte.SubframeDuration.Seconds() * n.Cfg.TDD.UplinkFraction()
				}
				delivered[c] += rate / nAct // 1-second epoch, shared airtime
			}
		}
	}
	out := make([]float64, len(n.Clients))
	for c := range out {
		out[c] = delivered[c] / float64(epochs) / 1e6
	}
	return out
}
