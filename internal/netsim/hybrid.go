package netsim

import (
	"cellfi/internal/core"
)

// SchemeHybrid implements the Section 7 extension: "CellFi can be
// extended to include centralized coordination among nodes from one
// provider, and distributed coordination across multiple providers."
//
// The distributed layer is exactly CellFi: every cell runs its own
// controller against PRACH overhearing and CQI drops, providers or
// not. On top, each provider's operations system — which *can* see its
// own cells' holdings over backhaul — runs a deconfliction pass every
// epoch: whenever two of its mutually-interfering cells reserved the
// same subchannel, the cell with less traffic is moved to a subchannel
// free of same-provider conflicts. Cross-provider interference is
// still resolved purely by the distributed protocol.

// updateHybrid runs the per-cell distributed layer, then each
// provider's centralized deconfliction.
func (n *Network) updateHybrid(prevTxMask [][]bool, prevActive, nowActive [][]int) {
	// Distributed layer: identical to plain CellFi.
	n.updateControllers(prevTxMask, prevActive, nowActive)

	np := 0
	for _, p := range n.providers {
		if p+1 > np {
			np = p + 1
		}
	}
	cellsOf := make([][]int, np)
	for i, p := range n.providers {
		cellsOf[p] = append(cellsOf[p], i)
	}
	threshold := n.noiseRBDBm() + n.Cfg.OracleInterferenceMarginDB
	conflict := func(i, j int) bool {
		// A boolean over a symmetric pair — truncation only has to
		// admit the same verdict in indexed and brute modes, which the
		// shared cellNearPos predicate guarantees.
		for _, c := range n.ClientsOf[i] {
			if n.truncate && !n.cellNearPos(j, n.Clients[c].Pos) {
				continue
			}
			if n.rxRB[j][c] >= threshold {
				return true
			}
		}
		for _, c := range n.ClientsOf[j] {
			if n.truncate && !n.cellNearPos(i, n.Clients[c].Pos) {
				continue
			}
			if n.rxRB[i][c] >= threshold {
				return true
			}
		}
		return false
	}

	for _, cells := range cellsOf {
		n.deconflictProvider(cells, nowActive, conflict)
	}
}

// deconflictProvider removes intra-provider subchannel collisions: for
// every conflicting pair of the provider's cells sharing a subchannel,
// the cell with fewer active clients releases it and, where possible,
// acquires a subchannel no conflicting same-provider cell holds.
func (n *Network) deconflictProvider(cells []int, nowActive [][]int, conflict func(i, j int) bool) {
	ctl := func(i int) *core.Controller { return n.controllers[i].(*core.Controller) }

	for ai, i := range cells {
		for _, j := range cells[ai+1:] {
			if !conflict(i, j) {
				continue
			}
			heldI := map[int]bool{}
			for _, k := range ctl(i).Held() {
				heldI[k] = true
			}
			for _, k := range ctl(j).Held() {
				if !heldI[k] {
					continue
				}
				// Collision on k: the lighter cell moves.
				loser, winner := j, i
				if len(nowActive[j]) > len(nowActive[i]) {
					loser, winner = i, j
				}
				_ = winner
				lc := ctl(loser)
				lc.Release(k)
				// Re-acquire only where no same-provider conflict
				// exists; if every such subchannel is also unknown
				// territory, leave re-acquisition to the distributed
				// layer's sensed-informed pick next epoch.
				if repl, ok := n.freeOfProviderConflicts(loser, cells, conflict); ok {
					lc.Acquire(repl)
				}
				n.allowed[loser] = lc.Held()
			}
		}
	}
}

// freeOfProviderConflicts finds the lowest-index subchannel that
// neither cell `who` nor any conflicting same-provider cell currently
// holds.
func (n *Network) freeOfProviderConflicts(who int, cells []int, conflict func(i, j int) bool) (int, bool) {
	blocked := map[int]bool{}
	for _, k := range n.controllers[who].Held() {
		blocked[k] = true
	}
	for _, j := range cells {
		if j == who || !conflict(who, j) {
			continue
		}
		for _, k := range n.controllers[j].Held() {
			blocked[k] = true
		}
	}
	// Prefer the highest free index: the packing heuristic crowds
	// low indices with re-use candidates, so a coordinated move is
	// least likely to collide cross-provider up high.
	for k := n.Cfg.BW.Subchannels() - 1; k >= 0; k-- {
		if !blocked[k] {
			return k, true
		}
	}
	return 0, false
}
