package topo

import (
	"testing"

	"cellfi/internal/geo"
)

func TestGenerateShape(t *testing.T) {
	p := Paper(14, 6)
	tp := Generate(p, 1)
	if len(tp.APs) != 14 {
		t.Fatalf("APs = %d", len(tp.APs))
	}
	if tp.TotalClients() != 84 {
		t.Fatalf("clients = %d, want 84", tp.TotalClients())
	}
	area := geo.Square(p.AreaSide)
	for i, ap := range tp.APs {
		if !area.Contains(ap) {
			t.Fatalf("AP %d outside area", i)
		}
		for j, c := range tp.Clients[i] {
			if !area.Contains(c) {
				t.Fatalf("client %d/%d outside area", i, j)
			}
			d := ap.Dist(c)
			if d < p.MinClientDist-1e-9 || d > p.CellRadius+1e-9 {
				t.Fatalf("client %d/%d at distance %g outside [%g, %g]",
					i, j, d, p.MinClientDist, p.CellRadius)
			}
		}
	}
	// AP spacing respected.
	for i := range tp.APs {
		for j := i + 1; j < len(tp.APs); j++ {
			if tp.APs[i].Dist(tp.APs[j]) < p.MinAPSpacing {
				t.Fatalf("APs %d and %d too close", i, j)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Paper(8, 6), 42)
	b := Generate(Paper(8, 6), 42)
	for i := range a.APs {
		if a.APs[i] != b.APs[i] {
			t.Fatal("same seed produced different AP placement")
		}
	}
	c := Generate(Paper(8, 6), 43)
	same := true
	for i := range a.APs {
		if a.APs[i] != c.APs[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical placement")
	}
}

func TestGenerateTrialsIndependent(t *testing.T) {
	trials := GenerateTrials(Paper(6, 6), 7, 20)
	if len(trials) != 20 {
		t.Fatalf("trials = %d", len(trials))
	}
	seen := map[geo.Point]bool{}
	for _, tr := range trials {
		if seen[tr.APs[0]] {
			t.Fatal("two trials share the first AP position")
		}
		seen[tr.APs[0]] = true
	}
}
