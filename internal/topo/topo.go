// Package topo generates the evaluation topologies of Section 6.3.4:
// access points placed in a 2 km x 2 km area with a configurable
// density, each serving a fixed number of clients placed within its
// coverage range, repeated across seeded trials.
package topo

import (
	"math/rand"

	"cellfi/internal/geo"
)

// Params controls topology generation.
type Params struct {
	// Area side length in metres (paper: 2000).
	AreaSide float64
	// NumAPs is the density knob (paper sweeps 6..14).
	NumAPs int
	// ClientsPerAP (paper: 6, denser runs 16).
	ClientsPerAP int
	// CellRadius bounds client placement around their AP (clients
	// are attached to the AP that serves them; the paper places
	// "the same number of clients within the corresponding range of
	// each access point").
	CellRadius float64
	// MinAPSpacing avoids degenerate co-located cells.
	MinAPSpacing float64
	// MinClientDist keeps clients off the AP mast.
	MinClientDist float64
}

// Paper returns the Section 6.3.4 parameters for a given AP count and
// clients per AP.
func Paper(numAPs, clientsPerAP int) Params {
	return Params{
		AreaSide:      2000,
		NumAPs:        numAPs,
		ClientsPerAP:  clientsPerAP,
		CellRadius:    700,
		MinAPSpacing:  250,
		MinClientDist: 25,
	}
}

// Topology is one generated deployment.
type Topology struct {
	Params Params
	APs    []geo.Point
	// Clients[i] holds the positions of AP i's clients.
	Clients [][]geo.Point
}

// TotalClients returns the client count.
func (t *Topology) TotalClients() int {
	n := 0
	for _, c := range t.Clients {
		n += len(c)
	}
	return n
}

// Generate builds one topology from the given seed.
func Generate(p Params, seed int64) *Topology {
	rng := rand.New(rand.NewSource(seed))
	area := geo.Square(p.AreaSide)
	aps := geo.MinSpacedPoints(rng, area, p.NumAPs, p.MinAPSpacing)
	clients := make([][]geo.Point, p.NumAPs)
	for i, ap := range aps {
		clients[i] = make([]geo.Point, p.ClientsPerAP)
		for j := range clients[i] {
			clients[i][j] = geo.RandomPointInRing(rng, ap, p.MinClientDist, p.CellRadius, &area)
		}
	}
	return &Topology{Params: p, APs: aps, Clients: clients}
}

// GenerateTrials builds n independent topologies (the paper repeats
// every scenario 20 times on fresh topologies).
func GenerateTrials(p Params, baseSeed int64, n int) []*Topology {
	out := make([]*Topology, n)
	for i := range out {
		out[i] = Generate(p, baseSeed+int64(i)*7919)
	}
	return out
}
