package phy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestModulationBits(t *testing.T) {
	cases := []struct {
		m    Modulation
		bits int
		name string
	}{
		{BPSK, 1, "BPSK"}, {QPSK, 2, "QPSK"}, {QAM16, 4, "16QAM"},
		{QAM64, 6, "64QAM"}, {QAM256, 8, "256QAM"},
	}
	for _, c := range cases {
		if c.m.Bits() != c.bits {
			t.Errorf("%v.Bits() = %d, want %d", c.m, c.m.Bits(), c.bits)
		}
		if c.m.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.m, c.m.String(), c.name)
		}
	}
}

func TestLTECQITableConsistency(t *testing.T) {
	prevEff, prevThr := 0.0, math.Inf(-1)
	for i := 1; i <= 15; i++ {
		m := LTECQI(i)
		if m.Index != i {
			t.Errorf("CQI %d has index %d", i, m.Index)
		}
		if m.Efficiency <= prevEff {
			t.Errorf("CQI %d efficiency %g not increasing", i, m.Efficiency)
		}
		if m.MinSINRdB <= prevThr {
			t.Errorf("CQI %d threshold %g not increasing", i, m.MinSINRdB)
		}
		// Tabulated efficiency must equal bits*rate (standard's own rule).
		want := float64(m.Modulation.Bits()) * m.CodeRate
		if math.Abs(m.Efficiency-want) > 0.01 {
			t.Errorf("CQI %d efficiency %g != bits*rate %g", i, m.Efficiency, want)
		}
		prevEff, prevThr = m.Efficiency, m.MinSINRdB
	}
}

// Section 3.1: LTE offers coding rates down to about 0.1; 802.11af's
// minimum is 0.5. Table 1 of the paper hinges on this gap.
func TestCodingRateFloors(t *testing.T) {
	if r := LTECQI(1).CodeRate; r > 0.12 {
		t.Errorf("LTE minimum code rate = %g, want <= 0.1 ballpark", r)
	}
	minWiFi := 1.0
	for i := 0; i < WiFiMCSCount(); i++ {
		if r := WiFiMCS(i).CodeRate; r < minWiFi {
			minWiFi = r
		}
	}
	if minWiFi != 0.5 {
		t.Errorf("Wi-Fi minimum code rate = %g, want 0.5", minWiFi)
	}
}

func TestLTECQIFromSINR(t *testing.T) {
	cases := []struct {
		sinr float64
		want int
	}{
		{-10, 0}, {-6.7, 1}, {-5, 1}, {0.2, 4}, {10.4, 9},
		{22.7, 15}, {30, 15},
	}
	for _, c := range cases {
		if got := LTECQIFromSINR(c.sinr); got != c.want {
			t.Errorf("LTECQIFromSINR(%g) = %d, want %d", c.sinr, got, c.want)
		}
	}
}

func TestLTECQIFromSINRMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		x := math.Mod(math.Abs(a), 60) - 30
		y := math.Mod(math.Abs(b), 60) - 30
		if x > y {
			x, y = y, x
		}
		return LTECQIFromSINR(x) <= LTECQIFromSINR(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLTECQIPanicsOutOfRange(t *testing.T) {
	for _, i := range []int{0, 16, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LTECQI(%d) did not panic", i)
				}
			}()
			LTECQI(i)
		}()
	}
}

func TestWiFiMCSFromSINR(t *testing.T) {
	if _, ok := WiFiMCSFromSINR(1.0); ok {
		t.Error("SINR below floor should not decode")
	}
	m, ok := WiFiMCSFromSINR(2.0)
	if !ok || m.Index != 0 {
		t.Errorf("at 2 dB got MCS %v ok=%v, want MCS 0", m.Index, ok)
	}
	m, _ = WiFiMCSFromSINR(50)
	if m.Index != 9 {
		t.Errorf("at 50 dB got MCS %d, want 9", m.Index)
	}
	m, _ = WiFiMCSFromSINR(16)
	if m.Index != 4 {
		t.Errorf("at 16 dB got MCS %d, want 4", m.Index)
	}
}

// LTE decodes ~9 dB deeper than Wi-Fi: this is the PHY half of the
// paper's range argument.
func TestLTEDecodesDeeperThanWiFi(t *testing.T) {
	gap := WiFiMinSINRdB - LTEMinSINRdB
	if gap < 8 {
		t.Errorf("LTE decode-floor advantage = %g dB, want about 8.7", gap)
	}
	// In the gap region LTE works and Wi-Fi does not.
	for _, sinr := range []float64{-6, -3, 0, 1.5} {
		if LTECQIFromSINR(sinr) == 0 {
			t.Errorf("LTE should decode at %g dB", sinr)
		}
		if _, ok := WiFiMCSFromSINR(sinr); ok {
			t.Errorf("Wi-Fi should not decode at %g dB", sinr)
		}
	}
}

func TestBLERWaterfall(t *testing.T) {
	m := LTECQI(7)
	at := BLER(m.MinSINRdB, m)
	if math.Abs(at-0.1) > 1e-9 {
		t.Errorf("BLER at threshold = %g, want 0.1", at)
	}
	below := BLER(m.MinSINRdB-3, m)
	above := BLER(m.MinSINRdB+3, m)
	if below <= at || above >= at {
		t.Errorf("BLER not monotone: below=%g at=%g above=%g", below, at, above)
	}
	if BLER(m.MinSINRdB-20, m) != 1 {
		t.Error("BLER should saturate at 1 deep below threshold")
	}
	if BLER(m.MinSINRdB+40, m) < 1e-7 {
		t.Error("BLER floor should hold")
	}
}

func TestBLERMonotoneInSINR(t *testing.T) {
	f := func(a, b float64) bool {
		x := math.Mod(math.Abs(a), 60) - 30
		y := math.Mod(math.Abs(b), 60) - 30
		if x > y {
			x, y = y, x
		}
		m := LTECQI(9)
		return BLER(x, m) >= BLER(y, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShannonRateSanity(t *testing.T) {
	// 5 MHz at 22.7 dB: capacity bound must exceed the top LTE rate
	// (eff 5.55 b/s/Hz) times bandwidth times data fraction.
	cap := ShannonRate(5e6, 22.7)
	if cap < 5.55*5e6*0.75*0.9 {
		t.Errorf("Shannon cap %g too low vs top MCS", cap)
	}
	if ShannonRate(5e6, -30) > 1e5 {
		t.Error("near-zero SINR should give near-zero capacity")
	}
}

func TestEffectiveSINR(t *testing.T) {
	// Uniform SINRs: effective equals the common value.
	for _, s := range []float64{-5, 0, 10, 20} {
		got := EffectiveSINRdB([]float64{s, s, s})
		if math.Abs(got-s) > 0.2 {
			t.Errorf("EESM of uniform %g dB = %g", s, got)
		}
	}
	// Mixed SINRs: effective is dominated by the weak subchannels,
	// hence below the arithmetic dB mean.
	got := EffectiveSINRdB([]float64{0, 20})
	if got >= 10 || got <= 0 {
		t.Errorf("EESM(0,20) = %g, want in (0,10) leaning low", got)
	}
	if !math.IsInf(EffectiveSINRdB(nil), -1) {
		t.Error("empty EESM should be -Inf")
	}
}

func BenchmarkLTECQIFromSINR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = LTECQIFromSINR(float64(i%40) - 10)
	}
}

func BenchmarkBLER(b *testing.B) {
	m := LTECQI(9)
	for i := 0; i < b.N; i++ {
		_ = BLER(float64(i%30)-5, m)
	}
}
