package phy

import "math"

// lteCQILinearMin[i] is the smallest float64 ratio r for which
// 10*math.Log10(r) >= lteCQITable[i].MinSINRdB. Comparing a linear
// signal/denominator ratio against these thresholds therefore gives the
// exact integer CQI the dB chain would — bit for bit, with no log10 per
// report. The table is derived at init by a bit-level binary search over
// the log-domain predicate itself (not pow(10, T/10), which can land one
// ULP off), relying only on 10*Log10 being monotone over positive
// float64s. TestLTECQILinearExhaustive and TestLTECQILinearThresholdULPs
// prove the equivalence.
var lteCQILinearMin [16]float64

func init() {
	lteCQILinearMin[0] = math.Inf(1) // CQI 0: out of range, never reached
	for i := 1; i <= 15; i++ {
		lteCQILinearMin[i] = minRatioForDB(lteCQITable[i].MinSINRdB)
	}
}

// minRatioForDB returns the smallest positive float64 r satisfying
// 10*math.Log10(r) >= db, by binary search over the ordered bit patterns
// of positive float64s.
func minRatioForDB(db float64) float64 {
	lo := math.Float64bits(math.SmallestNonzeroFloat64)
	hi := math.Float64bits(math.MaxFloat64)
	if 10*math.Log10(math.Float64frombits(hi)) < db {
		return math.Inf(1)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if 10*math.Log10(math.Float64frombits(mid)) >= db {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return math.Float64frombits(lo)
}

// LTECQIFromLinearSINR maps a linear-domain SINR, given as a signal
// power and a positive interference-plus-noise denominator (any common
// unit), to the same CQI LTECQIFromSINR(10*log10(sig/den)) returns —
// without the log10. Degenerate inputs follow the dB chain too: a zero
// or negative signal, or a NaN, yields CQI 0, and sig = +Inf (or den
// +Inf with sig finite) matches the -Inf/+Inf dB behavior because the
// division produces the identical ratio the log chain would see.
func LTECQIFromLinearSINR(sig, den float64) int {
	r := sig / den
	best := 0
	for best < 15 && r >= lteCQILinearMin[best+1] {
		best++
	}
	return best
}
