// Package phy provides the physical-layer abstractions shared by the LTE
// and Wi-Fi substrates: modulation-and-coding tables, the SINR -> CQI ->
// spectral-efficiency mapping, and a block-error-rate model.
//
// The LTE table is 3GPP TS 36.213 Table 7.2.3-1 (the CQI table the paper
// relies on for its coding-rate observations in Figure 1b); the Wi-Fi
// table is the 802.11ac/af MCS ladder, whose minimum coding rate of 1/2
// is the PHY limitation Section 3.1 highlights.
package phy

import (
	"fmt"
	"math"
)

// Modulation identifies a constellation.
type Modulation int

const (
	QPSK Modulation = iota
	QAM16
	QAM64
	QAM256
	BPSK
)

// String returns the conventional modulation name.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16QAM"
	case QAM64:
		return "64QAM"
	case QAM256:
		return "256QAM"
	}
	return fmt.Sprintf("Modulation(%d)", int(m))
}

// Bits returns raw bits per modulation symbol.
func (m Modulation) Bits() int {
	switch m {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	case QAM256:
		return 8
	}
	return 0
}

// MCS is one modulation-and-coding scheme entry.
type MCS struct {
	Index      int
	Modulation Modulation
	// CodeRate is the channel coding rate (0..1).
	CodeRate float64
	// Efficiency is information bits per modulation symbol
	// (Modulation.Bits * CodeRate, as tabulated by the standard).
	Efficiency float64
	// MinSINRdB is the threshold at which this MCS achieves roughly
	// 10% BLER on the first transmission.
	MinSINRdB float64
}

// lteCQITable is TS 36.213 Table 7.2.3-1 with conventional 10%-BLER SINR
// switching thresholds (link-level results widely used in system
// simulators; about 2 dB per CQI step).
var lteCQITable = [16]MCS{
	{0, QPSK, 0, 0, math.Inf(1)}, // CQI 0: out of range
	{1, QPSK, 78.0 / 1024, 0.1523, -6.7},
	{2, QPSK, 120.0 / 1024, 0.2344, -4.7},
	{3, QPSK, 193.0 / 1024, 0.3770, -2.3},
	{4, QPSK, 308.0 / 1024, 0.6016, 0.2},
	{5, QPSK, 449.0 / 1024, 0.8770, 2.4},
	{6, QPSK, 602.0 / 1024, 1.1758, 4.3},
	{7, QAM16, 378.0 / 1024, 1.4766, 5.9},
	{8, QAM16, 490.0 / 1024, 1.9141, 8.1},
	{9, QAM16, 616.0 / 1024, 2.4063, 10.3},
	{10, QAM64, 466.0 / 1024, 2.7305, 11.7},
	{11, QAM64, 567.0 / 1024, 3.3223, 14.1},
	{12, QAM64, 666.0 / 1024, 3.9023, 16.3},
	{13, QAM64, 772.0 / 1024, 4.5234, 18.7},
	{14, QAM64, 873.0 / 1024, 5.1152, 21.0},
	{15, QAM64, 948.0 / 1024, 5.5547, 22.7},
}

// LTECQICount is the number of usable CQI indices (1..15).
const LTECQICount = 15

// LTECQI returns the MCS entry for CQI index i in 1..15.
// It panics on out-of-range indices; CQI 0 ("out of range") has no MCS.
func LTECQI(i int) MCS {
	if i < 1 || i > 15 {
		panic(fmt.Sprintf("phy: CQI index %d out of range 1..15", i))
	}
	return lteCQITable[i]
}

// LTECQIFromSINR maps a post-equalization SINR to the highest CQI whose
// threshold is met, or 0 if even CQI 1 cannot be decoded.
func LTECQIFromSINR(sinrDB float64) int {
	best := 0
	for i := 1; i <= 15; i++ {
		if sinrDB >= lteCQITable[i].MinSINRdB {
			best = i
		}
	}
	return best
}

// LTEMinSINRdB is the SINR below which no LTE transport format decodes
// (CQI 1 threshold).
const LTEMinSINRdB = -6.7

// wifiMCSTable is the 802.11ac/af single-stream ladder. The minimum
// coding rate is 1/2 (MCS 0), the PHY constraint the paper contrasts
// with LTE's 0.1 floor.
var wifiMCSTable = []MCS{
	{0, BPSK, 0.5, 0.5, 2.0},
	{1, QPSK, 0.5, 1.0, 5.0},
	{2, QPSK, 0.75, 1.5, 9.0},
	{3, QAM16, 0.5, 2.0, 11.0},
	{4, QAM16, 0.75, 3.0, 15.0},
	{5, QAM64, 2.0 / 3, 4.0, 18.0},
	{6, QAM64, 0.75, 4.5, 20.0},
	{7, QAM64, 5.0 / 6, 5.0, 25.0},
	{8, QAM256, 0.75, 6.0, 29.0},
	{9, QAM256, 5.0 / 6, 20.0 / 3, 31.0},
}

// WiFiMinSINRdB is the decode floor of the lowest 802.11 MCS.
const WiFiMinSINRdB = 2.0

// WiFiMCSFromSINR returns the best Wi-Fi MCS for the given SINR (ideal
// rate adaptation, as the paper's ns-3 configuration uses). ok is false
// when the SINR is below the MCS 0 threshold.
func WiFiMCSFromSINR(sinrDB float64) (mcs MCS, ok bool) {
	for i := len(wifiMCSTable) - 1; i >= 0; i-- {
		if sinrDB >= wifiMCSTable[i].MinSINRdB {
			return wifiMCSTable[i], true
		}
	}
	return MCS{}, false
}

// WiFiMCS returns Wi-Fi MCS index i.
func WiFiMCS(i int) MCS {
	if i < 0 || i >= len(wifiMCSTable) {
		panic(fmt.Sprintf("phy: Wi-Fi MCS index %d out of range", i))
	}
	return wifiMCSTable[i]
}

// WiFiMCSCount is the number of Wi-Fi MCS entries.
func WiFiMCSCount() int { return len(wifiMCSTable) }

// BLER estimates the block error rate of transmitting with the given MCS
// at the given SINR. At the switching threshold the BLER is the target
// 10%; each dB below the threshold roughly triples the error rate and
// each dB above cuts it, following the familiar waterfall shape of turbo
// and convolutional codes.
func BLER(sinrDB float64, mcs MCS) float64 {
	if math.IsInf(mcs.MinSINRdB, 1) {
		return 1
	}
	margin := sinrDB - mcs.MinSINRdB
	// Waterfall: 10% at threshold, slope ~0.5 decades per dB.
	bler := 0.1 * math.Pow(10, -0.5*margin)
	if bler > 1 {
		return 1
	}
	if bler < 1e-6 {
		return 1e-6
	}
	return bler
}

// ShannonRate returns the AWGN capacity bound in bits/s for the given
// bandwidth and SINR, with a 25% implementation-loss derating. Used as a
// sanity cap on modelled rates.
func ShannonRate(bandwidthHz, sinrDB float64) float64 {
	snr := math.Pow(10, sinrDB/10)
	return 0.75 * bandwidthHz * math.Log2(1+snr)
}

// EffectiveSINRdB combines per-subcarrier or per-subchannel SINRs into a
// single effective value using the exponential effective SINR mapping
// (EESM) with beta=1, i.e. a capacity-style average in the linear domain
// of exp(-sinr). This is how wideband CQI summarizes frequency-selective
// conditions.
func EffectiveSINRdB(sinrsDB []float64) float64 {
	if len(sinrsDB) == 0 {
		return math.Inf(-1)
	}
	sum := 0.0
	for _, s := range sinrsDB {
		sum += math.Exp(-math.Pow(10, s/10))
	}
	avg := sum / float64(len(sinrsDB))
	if avg >= 1 {
		// All SINRs effectively zero or negative-infinite.
		return -30
	}
	return 10 * math.Log10(-math.Log(avg))
}

// EffectiveSINRdBFromLinear is EffectiveSINRdB taking the per-subchannel
// SINRs as linear ratios: EESM works in the linear domain natively, so
// the ratio form drops the pow(10, s/10) per subchannel. Given
// r = pow(10, s/10) it returns EffectiveSINRdB(s) up to that round
// trip's rounding (EESM feeds a ~2 dB-wide CQI quantizer, so the last-
// ulp wobble is immaterial — unlike the per-subband thresholds, which
// stay exact via LTECQIFromLinearSINR).
func EffectiveSINRdBFromLinear(ratios []float64) float64 {
	if len(ratios) == 0 {
		return math.Inf(-1)
	}
	sum := 0.0
	for _, r := range ratios {
		sum += math.Exp(-r)
	}
	avg := sum / float64(len(ratios))
	if avg >= 1 {
		return -30
	}
	return 10 * math.Log10(-math.Log(avg))
}
