package phy

import (
	"math"
	"testing"
)

// The linear-threshold CQI must be bit-identical to the log10 chain.
// Sweep -30..+40 dB at 0.001 dB steps (70,001 ratios spanning every
// threshold) and compare both directions: dB -> ratio and ratio -> dB.
func TestLTECQILinearExhaustive(t *testing.T) {
	for i := 0; i <= 70_000; i++ {
		db := -30 + float64(i)*0.001
		r := math.Pow(10, db/10)
		wantFromRatio := LTECQIFromSINR(10 * math.Log10(r))
		if got := LTECQIFromLinearSINR(r, 1); got != wantFromRatio {
			t.Fatalf("ratio %g (%.3f dB): linear CQI %d, log chain %d", r, db, got, wantFromRatio)
		}
		// Split the ratio across sig/den arbitrarily; the division must
		// reproduce the same CQI as the pre-divided ratio.
		if got := LTECQIFromLinearSINR(r*3.7, 3.7); got != LTECQIFromLinearSINR(r*3.7/3.7, 1) {
			t.Fatalf("ratio %g: sig/den split changed CQI", r)
		}
	}
}

// Walk several ULPs either side of every linear threshold: the CQI must
// flip at exactly the same float64 as the log-domain comparison does.
func TestLTECQILinearThresholdULPs(t *testing.T) {
	for i := 1; i <= 15; i++ {
		thr := lteCQILinearMin[i]
		r := thr
		for k := 0; k < 8; k++ {
			r = math.Nextafter(r, 0)
		}
		for k := 0; k < 16; k++ {
			want := LTECQIFromSINR(10 * math.Log10(r))
			if got := LTECQIFromLinearSINR(r, 1); got != want {
				t.Errorf("CQI %d threshold %b %+d ulps: linear %d, log %d",
					i, thr, k-8, got, want)
			}
			r = math.Nextafter(r, math.Inf(1))
		}
		// The threshold itself must be the first ratio that reaches CQI i.
		if LTECQIFromLinearSINR(thr, 1) < i {
			t.Errorf("CQI %d: threshold ratio does not reach its own CQI", i)
		}
		if below := math.Nextafter(thr, 0); LTECQIFromLinearSINR(below, 1) >= i {
			t.Errorf("CQI %d: one ulp below threshold still reaches CQI %d", i, i)
		}
	}
}

// Degenerate inputs must match the dB chain: NaN, zero signal, zero
// denominator, infinities.
func TestLTECQILinearDegenerate(t *testing.T) {
	cases := []struct{ sig, den float64 }{
		{0, 1},
		{math.NaN(), 1},
		{1, math.NaN()},
		{0, 0},
		{math.Inf(1), 1},
		{1, math.Inf(1)},
		{1e-300, 1e300},
		{1e300, 1e-300},
	}
	for _, c := range cases {
		want := LTECQIFromSINR(10 * math.Log10(c.sig/c.den))
		if got := LTECQIFromLinearSINR(c.sig, c.den); got != want {
			t.Errorf("sig %g den %g: linear CQI %d, log chain %d", c.sig, c.den, got, want)
		}
	}
}

func BenchmarkLTECQIFromSINRLog10(b *testing.B) {
	// Ratios spread across the CQI range, mimicking a city's SINR mix.
	ratios := cqiBenchRatios()
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ratios[i&255]
		sink += LTECQIFromSINR(10 * math.Log10(r))
	}
	_ = sink
}

func BenchmarkLTECQIFromLinearSINR(b *testing.B) {
	ratios := cqiBenchRatios()
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += LTECQIFromLinearSINR(ratios[i&255], 1)
	}
	_ = sink
}

func cqiBenchRatios() []float64 {
	ratios := make([]float64, 256)
	for i := range ratios {
		db := -10 + float64(i)*0.15 // -10..+28 dB
		ratios[i] = math.Pow(10, db/10)
	}
	return ratios
}
