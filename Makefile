GO ?= go

.PHONY: all build test verify bench sweep experiments fmt

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the fast correctness gate: static analysis, a full build,
# and the race detector over the concurrency-bearing packages.
verify:
	./scripts/verify.sh

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./internal/sim ./internal/runner

# Regenerate the committed runner speedup artifact.
BENCH_runner.json: FORCE
	RUNNER_BENCH_OUT=$(CURDIR)/BENCH_runner.json $(GO) test -run TestCampaignSpeedup -count 1 ./internal/runner

FORCE:

sweep:
	$(GO) run ./cmd/cellfi-sweep

experiments:
	$(GO) run ./cmd/experiments -quick

fmt:
	gofmt -w $$(find . -name '*.go' -not -path './.git/*')
