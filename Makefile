GO ?= go

.PHONY: all build test verify bench sweep experiments fmt chaos fuzz-short

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the fast correctness gate: static analysis, a full build,
# and the race detector over the concurrency-bearing packages.
verify:
	./scripts/verify.sh

# chaos is the fault-injection soak: the ETSI vacate property suite
# (100 seeded schedules + the 10k-step run + golden-log determinism)
# repeated 5x under the race detector. Scale with CHAOS_SEEDS /
# CHAOS_STEPS.
chaos:
	$(GO) test -race -count=5 -run 'TestETSIVacateProperty|TestChaosDeterminism|TestChaosGoldenTransitionLog' ./internal/core

# fuzz-short gives the PAWS client-side response parser a quick shake.
fuzz-short:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s -run '^$$' ./internal/paws

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./internal/sim ./internal/runner

# Regenerate the committed runner speedup artifact.
BENCH_runner.json: FORCE
	RUNNER_BENCH_OUT=$(CURDIR)/BENCH_runner.json $(GO) test -run TestCampaignSpeedup -count 1 ./internal/runner

FORCE:

sweep:
	$(GO) run ./cmd/cellfi-sweep

experiments:
	$(GO) run ./cmd/experiments -quick

fmt:
	gofmt -w $$(find . -name '*.go' -not -path './.git/*')
