GO ?= go

.PHONY: all build test verify bench sweep experiments fmt chaos chaos-soak fuzz-short race

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the fast correctness gate: static analysis, a full build,
# and the race detector over the concurrency-bearing packages.
verify:
	./scripts/verify.sh

# chaos is the fault-injection soak: the ETSI vacate property suite
# (100 seeded schedules + the 10k-step run + golden-log determinism)
# repeated 5x under the race detector. Scale with CHAOS_SEEDS /
# CHAOS_STEPS.
chaos:
	$(GO) test -race -count=5 -run 'TestETSIVacateProperty|TestChaosDeterminism|TestChaosGoldenTransitionLog' ./internal/core

# chaos-soak is the world-level acceptance run: a 100-seed chaos
# matrix (AP crash/restart x incumbent storms x PAWS failover x clock
# skew) under the race detector, every world audited online by the
# regulatory invariant watchdog — zero violations or the run fails
# with the first violating trace record.
chaos-soak:
	CHAOS_WORLD_SEEDS=100 $(GO) test -race -run 'TestChaosMatrix|TestWatchdog' -v ./internal/chaos

# race runs the full test suite under the race detector (the verify
# gate covers only the concurrency-bearing subset; this is the long
# form, also reachable via VERIFY_RACE=1 ./scripts/verify.sh).
race:
	$(GO) test -race ./...

# fuzz-short gives the parsing surfaces a quick shake: the PAWS
# client-side response decoder, the flight-recorder stream decoder,
# and the invariant verifier replaying arbitrary decoded streams.
fuzz-short:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s -run '^$$' ./internal/paws
	$(GO) test -fuzz=FuzzDecode -fuzztime=10s -run '^$$' ./internal/trace
	$(GO) test -fuzz=FuzzVerify -fuzztime=10s -run '^$$' ./internal/invariant

# bench runs the hot-path benchmark suite with allocation tracking:
# the sim event core, the Wi-Fi CSMA and LTE subframe loops, the
# propagation link cache, and the runner fleet.
bench:
	$(GO) test -bench . -benchmem -benchtime 100ms -run '^$$' \
		./internal/sim ./internal/propagation ./internal/wifi ./internal/lte \
		./internal/runner ./internal/geo ./internal/stats ./internal/metro \
		./internal/shard

# Regenerate the committed engine benchmark artifact (also enforces
# 0 allocs/op on Schedule+fire and the >=2x speedup floor).
BENCH_sim.json: FORCE
	SIM_BENCH_OUT=$(CURDIR)/BENCH_sim.json $(GO) test -run TestEngineBenchArtifact -count 1 -v .

# Regenerate the committed runner speedup artifact.
BENCH_runner.json: FORCE
	RUNNER_BENCH_OUT=$(CURDIR)/BENCH_runner.json $(GO) test -run TestCampaignSpeedup -count 1 ./internal/runner

# Regenerate the committed flight-recorder overhead artifact (also
# enforces 0 allocs/op on the instrumented hot loops with tracing off
# AND on).
BENCH_trace.json: FORCE
	TRACE_BENCH_OUT=$(CURDIR)/BENCH_trace.json $(GO) test -run TestTraceBenchArtifact -count 1 -v .

# Regenerate the committed spectrum-database load artifact (also
# enforces >= 50k qps sustained, the cache beating the raw index path,
# and a bounded p99 under a scripted database outage).
BENCH_paws.json: FORCE
	PAWS_BENCH_OUT=$(CURDIR)/BENCH_paws.json $(GO) test -run TestPAWSBenchArtifact -count 1 -v .

# Regenerate the committed city-scale baseline: the examples/metro
# scenario (2,000 APs / 100k UEs, one diurnal cycle) single-threaded.
# Enforces faster-than-real-time, 0 allocs/op on the grid query and the
# steady-state metro epoch, and indexed-beats-brute SINR at N=1000.
BENCH_city.json: FORCE
	CITY_BENCH_OUT=$(CURDIR)/BENCH_city.json $(GO) test -run TestCityBenchArtifact -count 1 -v -timeout 20m .

# Regenerate the committed sharded-execution baseline: the metro city at
# K in {1, 2, 4, 8} shards. Enforces 0 allocs/op on the lockstep barrier
# path, identical attached-count telemetry at every K, and — on machines
# with >= 8 cores — a >= 3x speedup at K=8.
BENCH_shard.json: FORCE
	SHARD_BENCH_OUT=$(CURDIR)/BENCH_shard.json $(GO) test -run TestShardBenchArtifact -count 1 -v -timeout 20m .

FORCE:

sweep:
	$(GO) run ./cmd/cellfi-sweep

experiments:
	$(GO) run ./cmd/experiments -quick

fmt:
	gofmt -w $$(find . -name '*.go' -not -path './.git/*')
