#!/bin/sh
# verify.sh — the repo's fast correctness gate.
#
# Runs static analysis, a full build, and the race detector over the
# packages that do real concurrency (the scenario runner, the event
# engine it instruments, and the core protocol state machines).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l . 2>/dev/null | grep -v '^\.git/' || true)
if [ -n "$unformatted" ]; then
	echo "gofmt: files need formatting (run make fmt):" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race (runner, sim, core, paws, faults, trace)"
go test -race ./internal/runner ./internal/sim ./internal/core ./internal/paws ./internal/faults ./internal/trace

# Optional full-race stage: VERIFY_RACE=1 runs the entire test suite
# under the race detector (equivalent to `make race`).
if [ "${VERIFY_RACE:-0}" = "1" ]; then
	echo "== go test -race ./... (full suite)"
	go test -race ./...
fi

# Optional chaos stage: VERIFY_CHAOS=1 adds the full fault-injection
# soak (the ETSI vacate property suite, 5x under -race) on top.
if [ "${VERIFY_CHAOS:-0}" = "1" ]; then
	echo "== make chaos (ETSI vacate property soak)"
	make chaos
fi

# Optional invariant stage: VERIFY_INVARIANTS=1 runs the world-level
# chaos matrix (crash x storm x failover x skew) with the online
# regulatory watchdog attached, plus the checker's own unit suite,
# under the race detector. Scale with CHAOS_WORLD_SEEDS /
# CHAOS_WORLD_STEPS (or use `make chaos-soak` for the 100-seed form).
if [ "${VERIFY_INVARIANTS:-0}" = "1" ]; then
	echo "== go test -race (chaos worlds + invariant watchdog)"
	go test -race ./internal/chaos ./internal/invariant
fi

# Optional bench stage: VERIFY_BENCH=1 re-measures engine dispatch
# throughput and fails on a >10% regression versus the committed
# BENCH_sim.json baseline. Opt-in because benchmarks are noisy on
# shared hardware.
if [ "${VERIFY_BENCH:-0}" = "1" ]; then
	echo "== benchdiff (engine events/sec vs BENCH_sim.json)"
	./scripts/benchdiff.sh
fi

# Optional city-scale stage: VERIFY_CITY=1 runs the spatial-index
# equivalence suites (netsim indexed-vs-brute trace identity, the metro
# SoA world) plus the city baseline gate: the full-cycle metro scenario
# must simulate faster than real time with a 0-alloc grid query, and
# must not regress versus the committed BENCH_city.json.
if [ "${VERIFY_CITY:-0}" = "1" ]; then
	echo "== go test (geo, stats, metro, netsim equivalence)"
	go test ./internal/geo ./internal/stats ./internal/metro ./internal/netsim
	echo "== city baseline gate (BENCH_city.json)"
	city_out=$(mktemp)
	CITY_BENCH_OUT="$city_out" go test -run TestCityBenchArtifact -count 1 -timeout 20m .
	rm -f "$city_out"
fi

# Optional sharded-execution stage: VERIFY_SHARD=1 runs the shard
# cluster suite plus the cross-shard-count equivalence tests (metro
# trace-byte identity at K in {1, 2, 8}, netsim bit-identical sharded
# service) under the race detector, then the shard baseline gate: the
# lockstep barrier path must be 0 allocs/op and the speedup floor
# applies when the machine has the cores (see BENCH_shard.json).
if [ "${VERIFY_SHARD:-0}" = "1" ]; then
	echo "== go test -race (shard, metro, netsim equivalence)"
	go test -race ./internal/shard ./internal/metro ./internal/netsim
	echo "== shard baseline gate (BENCH_shard.json)"
	shard_out=$(mktemp)
	SHARD_BENCH_OUT="$shard_out" go test -run TestShardBenchArtifact -count 1 -timeout 20m .
	rm -f "$shard_out"
fi

# Optional spectrum-database stage: VERIFY_PAWS=1 runs the pawsdb and
# load-harness suites (index/cache equivalence, lease wheel, fleet
# vacate-under-failover) under the race detector.
if [ "${VERIFY_PAWS:-0}" = "1" ]; then
	echo "== go test -race (pawsdb, pawsload)"
	go test -race ./internal/pawsdb ./internal/pawsload
fi

echo "verify: OK"
