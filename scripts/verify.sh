#!/bin/sh
# verify.sh — the repo's fast correctness gate.
#
# Runs static analysis, a full build, and the race detector over the
# packages that do real concurrency (the scenario runner, the event
# engine it instruments, and the core protocol state machines).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race (runner, sim, core)"
go test -race ./internal/runner ./internal/sim ./internal/core

echo "verify: OK"
