#!/bin/sh
# benchdiff.sh — guard against event-engine throughput regressions.
#
# Re-measures the engine's Schedule+fire dispatch rate and compares it
# against engine_events_per_sec in the committed BENCH_sim.json. Exits
# non-zero if throughput drops by more than BENCH_TOLERANCE_PCT
# (default 10%). Benchmarks are noisy on loaded machines, so this is an
# opt-in verify stage (VERIFY_BENCH=1 ./scripts/verify.sh), not part of
# the default gate.
set -eu

cd "$(dirname "$0")/.."

BASELINE_FILE=${BASELINE_FILE:-BENCH_sim.json}
TOLERANCE_PCT=${BENCH_TOLERANCE_PCT:-10}

if [ ! -f "$BASELINE_FILE" ]; then
	echo "benchdiff: no $BASELINE_FILE baseline; run 'make BENCH_sim.json' first" >&2
	exit 1
fi

baseline=$(sed -n 's/^  "engine_events_per_sec": \([0-9.e+]*\),*$/\1/p' "$BASELINE_FILE")
if [ -z "$baseline" ]; then
	echo "benchdiff: could not read engine_events_per_sec from $BASELINE_FILE" >&2
	exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== benchdiff: re-measuring engine dispatch rate"
SIM_BENCH_OUT="$tmp/bench.json" go test -run TestEngineBenchArtifact -count 1 . >/dev/null

current=$(sed -n 's/^  "engine_events_per_sec": \([0-9.e+]*\),*$/\1/p' "$tmp/bench.json")
if [ -z "$current" ]; then
	echo "benchdiff: re-measurement produced no engine_events_per_sec" >&2
	exit 1
fi

# Integer-percent comparison keeps this POSIX-sh portable: fail when
# current * 100 < baseline * (100 - tolerance).
awk -v cur="$current" -v base="$baseline" -v tol="$TOLERANCE_PCT" 'BEGIN {
	ratio = cur / base * 100
	printf "benchdiff: baseline %.2fM ev/s, current %.2fM ev/s (%.1f%%, floor %d%%)\n",
		base / 1e6, cur / 1e6, ratio, 100 - tol
	if (ratio < 100 - tol) {
		printf "benchdiff: FAIL — engine throughput regressed more than %d%%\n", tol
		exit 1
	}
	print "benchdiff: OK"
}'
