#!/bin/sh
# benchdiff.sh — guard against sim hot-path performance regressions.
#
# Re-measures the engine's Schedule+fire dispatch rate plus the three
# domain hot loops (csma_slot_loop_ms, lte_subframe,
# lte_scheduler_allocate) and compares them against the committed
# BENCH_sim.json. Exits non-zero if engine throughput drops, or any
# domain loop's ns_per_op rises, by more than BENCH_TOLERANCE_PCT
# (default 10%). Benchmarks are noisy on loaded machines, so this is an
# opt-in verify stage (VERIFY_BENCH=1 ./scripts/verify.sh), not part of
# the default gate.
#
# When a BENCH_paws.json baseline is present, the spectrum-database
# load run is re-measured the same way: sustained_qps must not drop by
# more than BENCH_TOLERANCE_PCT, and cached_p99_ns must not rise by
# more than PAWS_P99_TOLERANCE_PCT (default 50% — tail latency on one
# shared core is much noisier than throughput).
set -eu

cd "$(dirname "$0")/.."

BASELINE_FILE=${BASELINE_FILE:-BENCH_sim.json}
TOLERANCE_PCT=${BENCH_TOLERANCE_PCT:-10}

if [ ! -f "$BASELINE_FILE" ]; then
	echo "benchdiff: no $BASELINE_FILE baseline; run 'make BENCH_sim.json' first" >&2
	exit 1
fi

# read_top FILE KEY — a top-level scalar field.
read_top() {
	sed -n 's/^  "'"$2"'": \([0-9.e+]*\),*$/\1/p' "$1"
}

# read_ns FILE KEY — ns_per_op inside a top-level benchmark object.
read_ns() {
	awk -v key="\"$2\":" '
		$1 == key { inblock = 1 }
		inblock && $1 == "\"ns_per_op\":" { sub(/,$/, "", $2); print $2; exit }
	' "$1"
}

baseline=$(read_top "$BASELINE_FILE" engine_events_per_sec)
if [ -z "$baseline" ]; then
	echo "benchdiff: could not read engine_events_per_sec from $BASELINE_FILE" >&2
	exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== benchdiff: re-measuring engine dispatch + domain hot loops"
SIM_BENCH_OUT="$tmp/bench.json" go test -run TestEngineBenchArtifact -count 1 . >/dev/null

current=$(read_top "$tmp/bench.json" engine_events_per_sec)
if [ -z "$current" ]; then
	echo "benchdiff: re-measurement produced no engine_events_per_sec" >&2
	exit 1
fi

fail=0

# Integer-percent comparison keeps this POSIX-sh portable: fail when
# current * 100 < baseline * (100 - tolerance).
awk -v cur="$current" -v base="$baseline" -v tol="$TOLERANCE_PCT" 'BEGIN {
	ratio = cur / base * 100
	printf "benchdiff: engine baseline %.2fM ev/s, current %.2fM ev/s (%.1f%%, floor %d%%)\n",
		base / 1e6, cur / 1e6, ratio, 100 - tol
	if (ratio < 100 - tol) {
		printf "benchdiff: FAIL — engine throughput regressed more than %d%%\n", tol
		exit 1
	}
}' || fail=1

# Domain hot loops compare ns_per_op (lower is better): fail when the
# current cost exceeds the committed cost by more than the tolerance.
for key in csma_slot_loop_ms lte_subframe lte_scheduler_allocate; do
	base_ns=$(read_ns "$BASELINE_FILE" "$key")
	cur_ns=$(read_ns "$tmp/bench.json" "$key")
	if [ -z "$base_ns" ] || [ -z "$cur_ns" ]; then
		echo "benchdiff: could not read $key ns_per_op (baseline '$base_ns', current '$cur_ns')" >&2
		fail=1
		continue
	fi
	awk -v cur="$cur_ns" -v base="$base_ns" -v tol="$TOLERANCE_PCT" -v key="$key" 'BEGIN {
		ratio = cur / base * 100
		printf "benchdiff: %s baseline %.0f ns/op, current %.0f ns/op (%.1f%%, ceiling %d%%)\n",
			key, base, cur, ratio, 100 + tol
		if (ratio > 100 + tol) {
			printf "benchdiff: FAIL — %s regressed more than %d%%\n", key, tol
			exit 1
		}
	}' || fail=1
done

# Spectrum-database load baseline (same full-scale run the committed
# artifact used, so the comparison is apples to apples).
PAWS_BASELINE=${PAWS_BASELINE:-BENCH_paws.json}
PAWS_P99_TOL=${PAWS_P99_TOLERANCE_PCT:-50}
if [ -f "$PAWS_BASELINE" ]; then
	base_qps=$(read_top "$PAWS_BASELINE" sustained_qps)
	base_p99=$(read_top "$PAWS_BASELINE" cached_p99_ns)
	if [ -z "$base_qps" ] || [ -z "$base_p99" ]; then
		echo "benchdiff: could not read sustained_qps/cached_p99_ns from $PAWS_BASELINE" >&2
		fail=1
	else
		echo "== benchdiff: re-measuring spectrum-database load (this runs the full 500k-request harness)"
		PAWS_BENCH_OUT="$tmp/paws.json" go test -run TestPAWSBenchArtifact -count 1 . >/dev/null
		cur_qps=$(read_top "$tmp/paws.json" sustained_qps)
		cur_p99=$(read_top "$tmp/paws.json" cached_p99_ns)
		awk -v cur="$cur_qps" -v base="$base_qps" -v tol="$TOLERANCE_PCT" 'BEGIN {
			ratio = cur / base * 100
			printf "benchdiff: paws qps baseline %.0f, current %.0f (%.1f%%, floor %d%%)\n",
				base, cur, ratio, 100 - tol
			if (ratio < 100 - tol) {
				printf "benchdiff: FAIL — paws sustained qps regressed more than %d%%\n", tol
				exit 1
			}
		}' || fail=1
		awk -v cur="$cur_p99" -v base="$base_p99" -v tol="$PAWS_P99_TOL" 'BEGIN {
			ratio = cur / base * 100
			printf "benchdiff: paws cached p99 baseline %.1fus, current %.1fus (%.1f%%, ceiling %d%%)\n",
				base / 1e3, cur / 1e3, ratio, 100 + tol
			if (ratio > 100 + tol) {
				printf "benchdiff: FAIL — paws cached p99 regressed more than %d%%\n", tol
				exit 1
			}
		}' || fail=1
	fi
else
	echo "benchdiff: no $PAWS_BASELINE; skipping spectrum-database comparison"
fi

# City-scale baseline (examples/metro: 2,000 APs / 100k UEs, one full
# diurnal cycle, single-threaded). Gates: the absolute kernel-v2 floor
# (sim_realtime_factor >= 40 no matter what the baseline says), the
# usual regression tolerance against the committed factor, and
# ns_per_op regression bands on the fading/CQI microkernels
# (fade_draw, cqi_linear). The artifact test itself additionally
# enforces 0 allocs/op on the grid query, the steady-state metro epoch
# and both microkernels, plus the fade_draw >= 4x-over-v1 floor.
CITY_BASELINE=${CITY_BASELINE:-BENCH_city.json}
if [ -f "$CITY_BASELINE" ]; then
	base_rt=$(read_top "$CITY_BASELINE" sim_realtime_factor)
	if [ -z "$base_rt" ]; then
		echo "benchdiff: could not read sim_realtime_factor from $CITY_BASELINE" >&2
		fail=1
	else
		echo "== benchdiff: re-measuring the city-scale world (full diurnal cycle, ~1-2 min)"
		CITY_BENCH_OUT="$tmp/city.json" go test -run TestCityBenchArtifact -count 1 -timeout 20m . >/dev/null
		cur_rt=$(read_top "$tmp/city.json" sim_realtime_factor)
		awk -v cur="$cur_rt" -v base="$base_rt" -v tol="$TOLERANCE_PCT" 'BEGIN {
			ratio = cur / base * 100
			printf "benchdiff: city realtime baseline %.1fx, current %.1fx (%.1f%%, floor %d%%)\n",
				base, cur, ratio, 100 - tol
			if (cur < 40) {
				printf "benchdiff: FAIL — city realtime factor %.2fx under the kernel-v2 floor (40x)\n", cur
				exit 1
			}
			if (ratio < 100 - tol) {
				printf "benchdiff: FAIL — city realtime factor regressed more than %d%%\n", tol
				exit 1
			}
		}' || fail=1
		# Fading/CQI microkernels: ns_per_op must not rise past the band.
		for key in fade_draw cqi_linear metro_epoch; do
			base_ns=$(read_ns "$CITY_BASELINE" "$key")
			cur_ns=$(read_ns "$tmp/city.json" "$key")
			if [ -z "$base_ns" ] || [ -z "$cur_ns" ]; then
				echo "benchdiff: could not read $key ns_per_op (baseline '$base_ns', current '$cur_ns')" >&2
				fail=1
				continue
			fi
			awk -v cur="$cur_ns" -v base="$base_ns" -v tol="$TOLERANCE_PCT" -v key="$key" 'BEGIN {
				ratio = cur / base * 100
				printf "benchdiff: %s baseline %.1f ns/op, current %.1f ns/op (%.1f%%, ceiling %d%%)\n",
					key, base, cur, ratio, 100 + tol
				if (ratio > 100 + tol) {
					printf "benchdiff: FAIL — %s regressed more than %d%%\n", key, tol
					exit 1
				}
			}' || fail=1
		done
	fi
else
	echo "benchdiff: no $CITY_BASELINE; skipping city-scale comparison"
fi

# Sharded-execution baseline (the metro city at K in {1, 2, 4, 8}).
# Parallel speedups are only meaningful at the core count they were
# measured on, so when the committed baseline's num_cpu differs from
# this machine's, the speedup comparisons are skipped outright (the
# artifact regeneration still enforces the 0-alloc barrier and the
# cross-K determinism gates). On a matching machine: the absolute
# >= 3x floor at K=8 applies when there are >= 8 cores, and the
# measured speedup must not regress versus the committed one by more
# than the tolerance.
SHARD_BASELINE=${SHARD_BASELINE:-BENCH_shard.json}
if [ -f "$SHARD_BASELINE" ]; then
	base_cpu=$(read_top "$SHARD_BASELINE" num_cpu)
	base_speedup=$(read_top "$SHARD_BASELINE" speedup_k8)
	if [ -z "$base_cpu" ] || [ -z "$base_speedup" ]; then
		echo "benchdiff: could not read num_cpu/speedup_k8 from $SHARD_BASELINE" >&2
		fail=1
	else
		echo "== benchdiff: re-measuring sharded execution (metro city at K in {1,2,4,8}, ~1 min)"
		SHARD_BENCH_OUT="$tmp/shard.json" go test -run TestShardBenchArtifact -count 1 -timeout 20m . >/dev/null
		cur_cpu=$(read_top "$tmp/shard.json" num_cpu)
		cur_speedup=$(read_top "$tmp/shard.json" speedup_k8)
		cur_skipped=$(awk '/"skipped_shard_counts": \[/,/\]/' "$tmp/shard.json" |
			sed -n 's/^ *\([0-9][0-9]*\),*$/\1/p' | tr '\n' ' ')
		if [ -n "$cur_skipped" ]; then
			# Oversubscribed shard counts were not measured at all (the
			# artifact records them in skipped_shard_counts), so there is
			# no wall time to compare — K=8 in particular may be absent
			# and speedup_k8 zero by design.
			echo "benchdiff: shard counts [$cur_skipped] skipped on this machine (num_cpu=$cur_cpu) — ignoring their wall-time rows; speedup_k8 not gated"
		elif [ "$base_cpu" != "$cur_cpu" ]; then
			echo "benchdiff: shard baseline measured at num_cpu=$base_cpu, this machine has $cur_cpu — skipping speedup comparison (not comparable across core counts)"
		elif [ "$cur_cpu" -lt 8 ]; then
			echo "benchdiff: shard speedup_k8 baseline ${base_speedup}x, current ${cur_speedup}x — recorded, not gated (parallel speedup needs >= 8 cores, machine has $cur_cpu)"
		else
			awk -v cur="$cur_speedup" -v base="$base_speedup" -v tol="$TOLERANCE_PCT" -v cpus="$cur_cpu" 'BEGIN {
				ratio = cur / base * 100
				printf "benchdiff: shard speedup_k8 baseline %.2fx, current %.2fx (%.1f%%, floor %d%%)\n",
					base, cur, ratio, 100 - tol
				if (cur < 3) {
					printf "benchdiff: FAIL — K=8 speedup %.2fx on a %d-core machine, want >= 3x\n", cur, cpus
					exit 1
				}
				if (ratio < 100 - tol) {
					printf "benchdiff: FAIL — shard speedup regressed more than %d%%\n", tol
					exit 1
				}
			}' || fail=1
		fi
	fi
else
	echo "benchdiff: no $SHARD_BASELINE; skipping sharded-execution comparison"
fi

if [ "$fail" -ne 0 ]; then
	echo "benchdiff: FAIL"
	exit 1
fi
echo "benchdiff: OK"
