// Attach storm: the tail of the Figure 6 outage, at protocol level.
// A CellFi cell returns after vacating its channel for a
// wireless-microphone event. Thirty idle clients must first *find* the
// carrier again (multi-band cell search — the 56 seconds the paper
// measured) and then fight through contention-based random access
// (PRACH Msg1-4, with preamble collisions and backoff) to reconnect.
//
// The example also shows the paper's proposed optimization: a client
// provisioned to scan only TVWS-overlapping bands reconnects an order
// of magnitude faster.
//
//	go run ./examples/attach-storm
package main

import (
	"fmt"
	"time"

	"cellfi/internal/lte"
	"cellfi/internal/sim"
)

func main() {
	// 1. Cell search: how long until each kind of client even sees
	// the carrier again (474 MHz, TV channel 21).
	full := lte.NewCellSearcher()
	tvws := lte.NewCellSearcher().RestrictToTVWS()
	fullScan := full.FullScanTime() // worst case: carrier found last
	tvwsScan := tvws.FullScanTime()
	fmt.Println("cell search after the outage (worst case: carrier found last):")
	fmt.Printf("  stock multi-band client: %8s  (%d raster hypotheses — the paper's 56 s)\n",
		fullScan.Round(time.Second), full.TotalCandidates())
	fmt.Printf("  TVWS-only client:        %8s  (%d hypotheses) — the paper's proposed fix\n",
		tvwsScan.Round(time.Second), tvws.TotalCandidates())

	// 2. Random access: all 30 clients finish their scans around the
	// same moment and storm the PRACH.
	eng := sim.NewEngine(42)
	rrc := lte.NewRRCSim(eng)
	const clients = 30
	var done int
	var worst sim.Time
	totalAttempts := 0
	rrc.OnConnected = func(a lte.AttachResult) {
		done++
		totalAttempts += a.Attempts
		if a.Took > worst {
			worst = a.Took
		}
	}
	for c := 0; c < clients; c++ {
		rrc.Connect(c)
	}
	eng.Run(10 * time.Second)

	fmt.Printf("\nrandom access storm (%d clients, 54 contention preambles):\n", clients)
	fmt.Printf("  reconnected: %d/%d\n", done, clients)
	fmt.Printf("  mean attempts: %.1f (collisions resolved by backoff)\n",
		float64(totalAttempts)/float64(done))
	fmt.Printf("  slowest client: %s after the carrier reappeared\n", worst)
	fmt.Println("\nend-to-end, a stock client is back on the network about")
	fmt.Printf("%s after the channel returns; random access adds only %s.\n",
		(fullScan + worst).Round(time.Second), worst)
	fmt.Println("The 56 s the paper measured is almost entirely cell search,")
	fmt.Println("which is why disabling unused bands is its first suggestion.")
}
