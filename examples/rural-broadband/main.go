// Rural broadband: the deployment that motivated the paper — one
// CellFi access point on a rooftop serving under-served households up
// to a kilometre away, with no outdoor equipment at the homes. The
// example reproduces the Section 2 requirements: >= 1 km coverage and
// >= 1 Mbps per user, and shows why 802.11af cannot serve the same
// homes (its PHY decode floor sits ~9 dB higher).
//
//	go run ./examples/rural-broadband
package main

import (
	"fmt"

	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/phy"
	"cellfi/internal/propagation"
)

func main() {
	env := lte.NewEnvironment(7)
	ap := &lte.Cell{
		ID:         1,
		Pos:        geo.Point{X: 0, Y: 0},
		TxPowerDBm: 30,
		Antenna:    propagation.Sector(0), // 36 dBm EIRP, as deployed
		BW:         lte.BW5MHz,
		TDD:        lte.TDDConfig4,
		Activity:   lte.FullBuffer,
	}

	// Ten households along the sector at growing distances.
	fmt.Println("rooftop CellFi cell, 36 dBm EIRP, 5 MHz TDD carrier in a TV channel")
	fmt.Println()
	fmt.Printf("%-10s %-10s %-8s %-12s %-12s %s\n",
		"household", "distance", "SNR", "LTE rate", "802.11af", "HARQ use")
	served := 0
	for i := 1; i <= 10; i++ {
		d := float64(i) * 130 // out to 1.3 km
		home := &lte.Client{ID: 100 + i, Pos: geo.Point{X: d, Y: 0}, TxPowerDBm: 20}

		// Average the fluid rate over a second of fading.
		var rate float64
		var harq float64
		for b := int64(0); b < 10; b++ {
			var cellBits float64
			for k := 0; k < lte.BW5MHz.Subchannels(); k++ {
				sinr := env.DownlinkSINR(ap, nil, home, k, b*100)
				cqi := phy.LTECQIFromSINR(sinr)
				cellBits += lte.SubchannelRateBps(lte.BW5MHz, lte.TDDConfig4, k, cqi)
				if cqi > 0 {
					harq += phy.BLER(sinr, phy.LTECQI(cqi))
				}
			}
			rate += cellBits / 10
		}
		harq /= 10 * float64(lte.BW5MHz.Subchannels())
		snr := env.SNRAtDistance(ap, d)
		// 802.11af viability needs BOTH directions: the downlink and
		// the home's 20 dBm uplink spread across the whole 6 MHz
		// channel (no OFDMA narrow allocation to fall back on).
		wifiUplinkSNR := 20 + 6 - env.Model.PathLossDB(d) - propagation.NoiseDBm(6e6, 7)
		_, wifiDL := phy.WiFiMCSFromSINR(snr)
		_, wifiUL := phy.WiFiMCSFromSINR(wifiUplinkSNR)
		wifi := "no uplink"
		switch {
		case wifiDL && wifiUL:
			wifi = "reachable"
		case !wifiDL:
			wifi = "no signal"
		}
		status := ""
		if rate >= 1e6 {
			served++
		} else {
			status = "  (below 1 Mbps)"
		}
		fmt.Printf("%-10d %-10s %-8s %-12s %-12s %.0f%%%s\n",
			i, fmt.Sprintf("%.0f m", d), fmt.Sprintf("%.1f dB", snr),
			fmt.Sprintf("%.2f Mbps", rate/1e6), wifi, harq*100, status)
	}
	fmt.Printf("\n%d of 10 households get the 1 Mbps universal-broadband rate.\n", served)
	fmt.Println("The far homes ride CQI 1-6 (coding rates Wi-Fi does not offer) and")
	fmt.Println("lean on HARQ retransmissions — exactly the Figure 1 behaviour.")
}
