// Quickstart: build a small CellFi deployment, run the distributed
// interference management for half a minute of virtual time, and print
// what each cell reserved and what each client got.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"cellfi/internal/netsim"
	"cellfi/internal/topo"
)

func main() {
	// Three access points in a 1 km square, four clients each —
	// close enough that they must share the 5 MHz TV channel.
	params := topo.Paper(3, 4)
	params.AreaSide = 1000
	topology := topo.Generate(params, 42)

	cfg := netsim.DefaultConfig(netsim.SchemeCellFi, 42)
	network := netsim.New(topology, cfg)

	// Saturate every downlink queue and let the controllers run 30
	// one-second interference-management epochs.
	throughputs := network.Run(30)

	fmt.Println("CellFi quickstart: 3 cells x 4 clients on one 5 MHz TV channel")
	fmt.Println()
	for cell := range topology.APs {
		fmt.Printf("cell %d reserved subchannels %v\n", cell, network.Allowed(cell))
		for _, ci := range network.ClientsOf[cell] {
			c := network.Clients[ci]
			fmt.Printf("   client %2d at %-18s  %.2f Mbps\n",
				ci, c.Pos, throughputs[ci])
		}
	}
	fmt.Printf("\ncontroller hops during convergence: %d\n", network.Hops)
	fmt.Println("note how the reserved sets are disjoint wherever cells overlap:")
	fmt.Println("no X2, no central controller — only PRACH overhearing and CQI reports.")
}
