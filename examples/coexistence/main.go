// Coexistence: two independent operators deploy CellFi access points
// in the same neighbourhood, on the same TV channel, with no X2 link
// and no shared controller. The example steps the distributed
// interference management epoch by epoch and prints how the two
// controllers carve up the 13 subchannels purely from PRACH
// overhearing and CQI drops — then an operator's cell goes idle and
// the remaining one reclaims the spectrum.
//
//	go run ./examples/coexistence
package main

import (
	"fmt"

	"cellfi/internal/netsim"
	"cellfi/internal/topo"
)

func main() {
	// Two cells 400 m apart: heavily overlapping coverage.
	p := topo.Paper(2, 6)
	p.AreaSide = 700
	p.MinAPSpacing = 350
	tp := topo.Generate(p, 11)

	n := netsim.New(tp, netsim.DefaultConfig(netsim.SchemeCellFi, 11))
	n.Backlog()

	fmt.Println("two operators, one TV channel, no coordination")
	fmt.Printf("cell A at %s, cell B at %s\n\n", tp.APs[0], tp.APs[1])
	fmt.Printf("%-7s %-28s %-28s %s\n", "epoch", "cell A holds", "cell B holds", "hops")
	show := func(v []int) string { return fmt.Sprintf("%v", v) }
	for e := 1; e <= 12; e++ {
		n.Step()
		if e <= 6 || e%3 == 0 {
			fmt.Printf("%-7d %-28s %-28s %d\n", e, show(n.Allowed(0)), show(n.Allowed(1)), n.Hops)
		}
	}

	overlap := 0
	inA := map[int]bool{}
	for _, k := range n.Allowed(0) {
		inA[k] = true
	}
	for _, k := range n.Allowed(1) {
		if inA[k] {
			overlap++
		}
	}
	fmt.Printf("\nafter convergence the reservations overlap on %d subchannels\n\n", overlap)

	// Operator B's users leave; its queues drain and the census
	// (PRACH sightings expire after a second) hands the spectrum back.
	fmt.Println("operator B's clients go idle...")
	for _, ci := range n.ClientsOf[1] {
		n.Clients[ci].Backlogged = false
		n.Clients[ci].QueuedBits = 0
	}
	for e := 13; e <= 16; e++ {
		n.Step()
		fmt.Printf("%-7d %-28s %-28s\n", e, show(n.Allowed(0)), show(n.Allowed(1)))
	}
	fmt.Printf("\ncell A now holds %d of 13 subchannels — short-term reservation,\n", len(n.Allowed(0)))
	fmt.Println("not ownership: spectrum returns as soon as demand disappears.")
}
