// Metro: one city-scale CellFi world — 2,000 access points and 100,000
// UEs on a 14 km x 7 km rectangle — simulated faster than real time on
// a single core.
//
// The run covers one compressed diurnal cycle: the attached population
// ramps from the overnight floor to the daytime peak and back while a
// rotating cohort of UEs moves through the city. Whole-run metrics come
// from bounded-memory streaming aggregates, so memory stays flat no
// matter how long the city runs.
//
// With -shards K > 1 the same world runs on K region shards in
// conservative lockstep windows, one engine per core; the integer epoch
// telemetry is identical at every K (see DESIGN.md, "Sharded execution
// and the determinism contract").
//
//	go run ./examples/metro [-epochs N] [-seed S] [-shards K] [-json]
//	    [-cpuprofile F] [-memprofile F] [-trace F]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"cellfi/internal/metro"
	"cellfi/internal/profiling"
)

func main() {
	epochs := flag.Int("epochs", 240, "simulated seconds (one diurnal cycle = 240)")
	seed := flag.Int64("seed", 1, "world seed")
	shards := flag.Int("shards", 1, "region shards (1 = single-threaded direct path)")
	asJSON := flag.Bool("json", false, "emit a JSON summary instead of text")
	prof := profiling.AddFlags()
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		log.Fatalf("metro: %v", err)
	}
	defer stopProf()

	cfg := metro.DefaultCity(*seed)
	cfg.Shards = *shards
	buildStart := time.Now()
	w := metro.New(cfg)
	defer w.Close()
	buildWall := time.Since(buildStart)

	simStart := time.Now()
	w.Run(*epochs)
	simWall := time.Since(simStart)
	realtime := float64(*epochs) / simWall.Seconds()

	summary := map[string]any{
		"aps":                 cfg.NAPs,
		"ues":                 cfg.NUEs,
		"area_km2":            cfg.AreaW * cfg.AreaH / 1e6,
		"epochs":              *epochs,
		"shards":              cfg.Shards,
		"build_ms":            buildWall.Milliseconds(),
		"sim_wall_ms":         simWall.Milliseconds(),
		"sim_realtime_factor": realtime,
		"attached_mean":       w.Attached.Mean(),
		"attached_peak":       w.Attached.Max(),
		"delivered_gbit":      float64(w.DeliveredBits()) / 1e9,
		"ue_mbps_mean":        w.Throughput.Mean(),
		"ue_mbps_p50":         w.ThroughputQ.Quantile(0.5),
		"ue_mbps_p95":         w.ThroughputQ.Quantile(0.95),
	}
	if st, ok := w.ShardStats(); ok {
		summary["shard_windows"] = st.Windows
		summary["shard_utilization"] = st.Utilization()
		summary["shard_barrier_stall_ms"] = st.BarrierStallMS()
		summary["cross_shard_messages"] = st.Msgs
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("metro: %d APs, %d UEs on %.0f km²\n",
		cfg.NAPs, cfg.NUEs, cfg.AreaW*cfg.AreaH/1e6)
	fmt.Printf("built world in %v\n", buildWall.Round(time.Millisecond))
	mode := "single-threaded"
	if cfg.Shards > 1 {
		mode = fmt.Sprintf("%d shards", cfg.Shards)
	}
	fmt.Printf("simulated %d s in %v — %.1fx real time, %s\n",
		*epochs, simWall.Round(time.Millisecond), realtime, mode)
	fmt.Printf("attached: %.0f mean / %.0f peak UEs\n",
		w.Attached.Mean(), w.Attached.Max())
	fmt.Printf("delivered: %.1f Gbit total\n", float64(w.DeliveredBits())/1e9)
	fmt.Printf("per-UE throughput: %.2f Mbps mean, %.2f p50, %.2f p95\n",
		w.Throughput.Mean(), w.ThroughputQ.Quantile(0.5), w.ThroughputQ.Quantile(0.95))
	if st, ok := w.ShardStats(); ok {
		fmt.Printf("shards: %d windows, %.1f ms total barrier stall, utilization",
			st.Windows, st.BarrierStallMS())
		for _, u := range st.Utilization() {
			fmt.Printf(" %.0f%%", u*100)
		}
		fmt.Println()
	}
	if realtime < 1 {
		fmt.Println("WARNING: slower than real time")
		os.Exit(1)
	}
}
