// Spectrum database walkthrough: start an in-process PAWS server,
// drive a CellFi access point's channel selector against it, then
// revoke the channel (a wireless microphone registers) and watch the
// AP vacate within the regulatory deadline and reacquire afterwards —
// the Figure 6 cycle, end to end over real HTTP.
//
//	go run ./examples/spectrum-database
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"cellfi/internal/core"
	"cellfi/internal/geo"
	"cellfi/internal/paws"
	"cellfi/internal/spectrum"
)

func main() {
	// A virtual clock lets the example play out a 6-minute scenario
	// instantly while exercising the real wire protocol.
	now := time.Date(2017, 12, 12, 9, 0, 0, 0, time.UTC)
	start := now

	registry := spectrum.NewRegistry(spectrum.EU)
	server := paws.NewServer(registry)
	server.Now = func() time.Time { return now }
	hs := httptest.NewServer(server)
	defer hs.Close()

	apPos := geo.Point{X: 250, Y: 400}
	client := paws.NewClient(hs.URL, "AP-EXAMPLE")
	if _, err := client.Init(apPos); err != nil {
		log.Fatal(err)
	}
	selector := core.NewChannelSelector(client, apPos, 15)

	say := func(format string, args ...any) {
		fmt.Printf("[t=%6s] %s\n", now.Sub(start), fmt.Sprintf(format, args...))
	}

	// 1. Acquire.
	if _, err := selector.Refresh(now); err != nil {
		log.Fatal(err)
	}
	lease := selector.Current()
	say("acquired TV channel %d (EARFCN %d, cap %.0f dBm EIRP)",
		lease.Channel, lease.EARFCN, lease.MaxEIRPdBm)

	// 2. A production registers wireless microphones on every channel
	// for five minutes, one minute into the run.
	revokeAt := now.Add(time.Minute)
	server.Lock()
	for _, ch := range spectrum.EU.Channels() {
		_ = registry.AddIncumbent(spectrum.Incumbent{
			Kind: spectrum.WirelessMic, Channel: ch, Location: apPos,
			ProtectRadius: 3000, From: revokeAt, To: revokeAt.Add(5 * time.Minute),
		})
	}
	server.Unlock()
	say("wireless-microphone event registered: all channels protected from t=1m for 5m")

	// 3. Poll once a second, as the paper's deployment does.
	vacated := false
	for i := 0; i < 500; i++ {
		now = now.Add(time.Second)
		action, err := selector.Refresh(now)
		if err != nil {
			continue
		}
		switch action {
		case core.Vacated:
			say("channel gone from the database -> radio OFF (ETSI allows %v; the paper measured %v)",
				core.VacateDeadline, core.MeasuredVacateDelay)
			vacated = true
		case core.Acquired:
			l := selector.Current()
			say("channel %d back -> radio reboots (%v) and clients re-attach (%v)",
				l.Channel, core.MeasuredAPRebootDelay, core.MeasuredClientReconnectDelay)
			say("traffic resumes at t=%s",
				now.Sub(start)+core.MeasuredAPRebootDelay+core.MeasuredClientReconnectDelay)
			if !vacated {
				log.Fatal("reacquired without having vacated?")
			}
			return
		}
	}
	log.Fatal("scenario did not complete")
}
