// Package cellfi is a from-scratch Go reproduction of "Towards
// unlicensed cellular networks in TV white spaces" (CoNEXT 2017): the
// CellFi architecture — an LTE-based unlicensed cellular network for
// TV white spaces with PAWS-compliant channel selection and fully
// decentralized intra-channel interference management — together with
// every substrate its evaluation depends on and a harness that
// regenerates each table and figure of the paper.
//
// Start with README.md for orientation, DESIGN.md for the system
// inventory and modelling decisions, and EXPERIMENTS.md for the
// paper-versus-measured scorecard. The public surface lives under
// internal/ (this is a research reproduction, not a semver-stable
// library); cmd/experiments regenerates the evaluation and
// bench_test.go exposes each experiment as a testing.B benchmark.
package cellfi
