package cellfi_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"cellfi/internal/core"
	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/netsim"
	"cellfi/internal/paws"
	"cellfi/internal/spectrum"
	"cellfi/internal/topo"
)

// TestFullStackLifecycle walks the complete CellFi story in one test:
// an access point leases a TV channel from a PAWS database over HTTP,
// its network serves clients under distributed interference
// management, a wireless-microphone event withdraws the spectrum, the
// AP vacates within the regulatory deadline (radio off: zero service),
// and when the incumbent leaves, the AP reacquires and service
// resumes.
func TestFullStackLifecycle(t *testing.T) {
	// --- Spectrum plane ---------------------------------------------------
	now := time.Date(2017, 12, 12, 9, 0, 0, 0, time.UTC)
	reg := spectrum.NewRegistry(spectrum.EU)
	srv := paws.NewServer(reg)
	srv.Now = func() time.Time { return now }
	hs := httptest.NewServer(srv)
	defer hs.Close()

	apPos := geo.Point{X: 1000, Y: 1000}
	dbClient := paws.NewClient(hs.URL, "AP-INTEG")
	if _, err := dbClient.Init(apPos); err != nil {
		t.Fatalf("PAWS init: %v", err)
	}
	sel := core.NewChannelSelector(dbClient, apPos, 15)
	if act, err := sel.Refresh(now); err != nil || act != core.Acquired {
		t.Fatalf("initial acquisition: %v %v", act, err)
	}
	lease := sel.Current()
	if lease.EARFCN != lte.EARFCNFromFreq(lease.CenterFreqHz) {
		t.Fatal("lease EARFCN inconsistent")
	}

	// --- Data plane on the leased channel ---------------------------------
	tp := topo.Generate(topo.Paper(4, 4), 17)
	net := netsim.New(tp, netsim.DefaultConfig(netsim.SchemeCellFi, 17))
	net.Backlog()
	served := func() int64 {
		var sum int64
		for _, b := range net.Step().ServedBits {
			sum += b
		}
		return sum
	}
	var before int64
	for e := 0; e < 10; e++ {
		before = served()
		now = now.Add(time.Second)
		if _, err := sel.Refresh(now); err != nil {
			t.Fatalf("steady-state refresh: %v", err)
		}
	}
	if before == 0 {
		t.Fatal("network served nothing in steady state")
	}

	// --- Incumbent appears -------------------------------------------------
	srv.Lock()
	for _, ch := range spectrum.EU.Channels() {
		_ = reg.AddIncumbent(spectrum.Incumbent{
			Kind: spectrum.WirelessMic, Channel: ch, Location: apPos,
			ProtectRadius: 5000, From: now, To: now.Add(3 * time.Minute),
		})
	}
	srv.Unlock()
	now = now.Add(time.Second)
	act, _ := sel.Refresh(now)
	if act != core.Vacated {
		t.Fatalf("expected vacate after withdrawal, got %v", act)
	}
	if sel.Current() != nil {
		t.Fatal("lease survived withdrawal")
	}
	// Radio off: a compliant network serves zero bits. (The data plane
	// models this by not stepping while off-channel — the selector is
	// the gate.)

	// --- Incumbent leaves, AP reacquires ------------------------------------
	now = now.Add(3*time.Minute + time.Second)
	act, err := sel.Refresh(now)
	if err != nil || act != core.Acquired {
		t.Fatalf("reacquisition: %v %v", act, err)
	}
	if sel.Current().Channel != lease.Channel {
		t.Fatalf("reacquired %d, want the original channel %d",
			sel.Current().Channel, lease.Channel)
	}
	if after := served(); after == 0 {
		t.Fatal("network dead after reacquisition")
	}
}

// TestSchemeOrderingEndToEnd pins the paper's headline ordering on a
// moderate scenario: oracle >= cellfi > unmanaged LTE on starvation.
func TestSchemeOrderingEndToEnd(t *testing.T) {
	starved := map[netsim.Scheme]int{}
	for seed := int64(0); seed < 3; seed++ {
		tp := topo.Generate(topo.Paper(10, 6), 700+seed)
		for _, s := range []netsim.Scheme{netsim.SchemeLTE, netsim.SchemeCellFi, netsim.SchemeOracle} {
			n := netsim.New(tp, netsim.DefaultConfig(s, 700+seed))
			for _, v := range n.Run(20) {
				if v < 0.05 {
					starved[s]++
				}
			}
		}
	}
	if starved[netsim.SchemeCellFi] >= starved[netsim.SchemeLTE] {
		t.Errorf("CellFi starved %d >= LTE %d", starved[netsim.SchemeCellFi], starved[netsim.SchemeLTE])
	}
	if starved[netsim.SchemeOracle] >= starved[netsim.SchemeLTE] {
		t.Errorf("oracle starved %d >= LTE %d", starved[netsim.SchemeOracle], starved[netsim.SchemeLTE])
	}
	// CellFi tracks the oracle (Figure 9b); either may edge the other:
	// the oracle's hard binary conflict graph is conservative, while
	// CellFi's CQI-driven detector tolerates mild interference and
	// reuses more spectrum.
	diff := starved[netsim.SchemeOracle] - starved[netsim.SchemeCellFi]
	if diff < 0 {
		diff = -diff
	}
	if diff > 25 { // of 180 clients
		t.Errorf("CellFi (%d) and oracle (%d) starvation diverge",
			starved[netsim.SchemeCellFi], starved[netsim.SchemeOracle])
	}
}

// TestDeterministicEndToEnd: the whole stack is reproducible per seed.
func TestDeterministicEndToEnd(t *testing.T) {
	run := func() []float64 {
		tp := topo.Generate(topo.Paper(6, 4), 99)
		n := netsim.New(tp, netsim.DefaultConfig(netsim.SchemeHybrid, 99))
		return n.Run(10)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("full-stack run not deterministic at client %d", i)
		}
	}
}
