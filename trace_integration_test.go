package cellfi_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/netsim"
	"cellfi/internal/runner"
	"cellfi/internal/sim"
	"cellfi/internal/topo"
	"cellfi/internal/trace"
)

// traceShardSpecs builds a two-shard campaign over the fluid netsim:
// each shard generates a topology from its seed, runs epochs of CellFi
// interference management, and flight-records the controllers' IM
// decisions through the runner's per-run capture.
func traceShardSpecs(seedOf func(shard int) int64) []runner.Spec {
	specs := make([]runner.Spec, 2)
	for i := range specs {
		i := i
		specs[i] = runner.Spec{
			Label: fmt.Sprintf("shard=%d", i),
			Seed:  seedOf(i),
			Run: func(c *runner.Ctx) (any, error) {
				p := topo.Paper(6, 3)
				tp := topo.Generate(p, c.Seed())
				cfg := netsim.DefaultConfig(netsim.SchemeCellFi, c.Seed())
				cfg.Trace = c.Recorder()
				n := netsim.New(tp, cfg)
				n.Run(8)
				c.AddSteps(8)
				return nil, nil
			},
		}
	}
	return specs
}

// TestTraceReplayDiff is the acceptance check for the flight recorder:
// two runner shards with the same seed capture byte-identical streams
// (trace.Diff reports identical), and different seeds produce a
// localized first divergence carrying timestamp, AP and kind.
func TestTraceReplayDiff(t *testing.T) {
	dir := t.TempDir()
	rep := runner.Run(context.Background(), "trace-same-seed",
		traceShardSpecs(func(int) int64 { return 17 }),
		runner.Options{Workers: 2, TraceDir: dir})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	var streams [][]byte
	for _, r := range rep.Runs {
		if r.TracePath == "" || r.TraceRecords == 0 {
			t.Fatalf("run %d captured nothing: %+v", r.Index, r)
		}
		raw, err := os.ReadFile(r.TracePath)
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, raw)
	}
	if !bytes.Equal(streams[0], streams[1]) {
		t.Fatal("same-seed shards must record byte-identical traces")
	}
	d := trace.Diff(streams[0], streams[1])
	if !d.Identical {
		t.Fatalf("Diff on same-seed shards: %s", d)
	}

	rep2 := runner.Run(context.Background(), "trace-diff-seed",
		traceShardSpecs(func(shard int) int64 { return int64(40 + shard) }),
		runner.Options{Workers: 2, TraceDir: dir})
	if err := rep2.Err(); err != nil {
		t.Fatal(err)
	}
	rawA, err := os.ReadFile(rep2.Runs[0].TracePath)
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := os.ReadFile(rep2.Runs[1].TracePath)
	if err != nil {
		t.Fatal(err)
	}
	d = trace.Diff(rawA, rawB)
	if d.Identical {
		t.Fatal("different-seed shards recorded identical traces")
	}
	// The divergence report must localize the first differing record
	// with its timestamp, AP and kind (unless one stream is a strict
	// prefix of the other, which topology-level divergence rules out
	// here).
	if d.A == nil || d.B == nil {
		t.Fatalf("divergence not localized to a record pair: %+v", d)
	}
	if d.A.Kind == 0 || d.B.Kind == 0 {
		t.Fatalf("diverging records missing kinds: %s", d)
	}
	s := d.String()
	if s == "" {
		t.Fatal("empty divergence rendering")
	}
	t.Logf("divergence: %s", s)
}

// TestCellSimTraceByteIdentity pins same-seed byte-identity at subframe
// granularity through the allocation-free scheduler path: two shards
// run an identical proportional-fair cell (interferer, fading, HARQ,
// CQI noise draws) and must flight-record byte-identical streams with
// grant and CQI records present. This is the determinism contract the
// dense AllocScratch iteration order upholds — the map-based allocation
// it replaced left grant emission order to map iteration.
func TestCellSimTraceByteIdentity(t *testing.T) {
	dir := t.TempDir()
	specs := make([]runner.Spec, 2)
	for i := range specs {
		specs[i] = runner.Spec{
			Label: fmt.Sprintf("cell=%d", i),
			Seed:  23,
			Run: func(c *runner.Ctx) (any, error) {
				eng := sim.NewEngine(c.Seed())
				eng.SetRecorder(c.Recorder())
				env := lte.NewEnvironment(c.Seed())
				cell := &lte.Cell{
					ID: 1, TxPowerDBm: 30,
					BW: lte.BW5MHz, TDD: lte.TDDConfig4, Activity: lte.FullBuffer,
				}
				interferer := &lte.Cell{
					ID: 2, Pos: geo.Point{X: 700}, TxPowerDBm: 30,
					BW: lte.BW5MHz, TDD: lte.TDDConfig4, Activity: lte.FullBuffer,
				}
				clients := []*lte.Client{
					{ID: 100, Pos: geo.Point{X: 150}, TxPowerDBm: 20},
					{ID: 101, Pos: geo.Point{X: 600}, TxPowerDBm: 20},
				}
				cs := lte.NewCellSim(eng, env, cell, clients)
				cs.Sched = &lte.ProportionalFair{}
				cs.Interferers = []*lte.Cell{interferer}
				cs.Start()
				cs.Backlog(100, 1<<30)
				cs.Backlog(101, 1<<30)
				eng.Run(sim.Time(300 * time.Millisecond))
				c.AddSteps(300)
				return nil, nil
			},
		}
	}
	rep := runner.Run(context.Background(), "cellsim-trace", specs,
		runner.Options{Workers: 2, TraceDir: dir})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	var streams [][]byte
	for _, r := range rep.Runs {
		raw, err := os.ReadFile(r.TracePath)
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, raw)
	}
	if !bytes.Equal(streams[0], streams[1]) {
		d := trace.Diff(streams[0], streams[1])
		t.Fatalf("same-seed cell runs diverged: %s", d)
	}
	recs, err := trace.Decode(streams[0])
	if err != nil {
		t.Fatal(err)
	}
	var grants, cqis int
	for _, r := range recs {
		switch r.Kind {
		case trace.KindLTEGrant:
			grants++
		case trace.KindLTECQI:
			cqis++
		}
	}
	if grants == 0 || cqis == 0 {
		t.Fatalf("trace missing LTE records: %d grants, %d CQI reports", grants, cqis)
	}
}
