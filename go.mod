module cellfi

go 1.22
