// BENCH_city.json writer: regenerates the committed city-scale
// baseline when CITY_BENCH_OUT is set (see `make BENCH_city.json`).
// It runs the examples/metro headline scenario — 2,000 APs, 100k UEs,
// one compressed diurnal cycle — single-threaded and enforces the
// scale contract: the city simulates faster than real time, the
// spatial-index neighborhood query is 0 allocs/op, the metro epoch
// sweep is allocation-free in steady state, and the indexed SINR path
// beats the brute truncated scan at N=1000 APs.
package cellfi_test

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/metro"
)

// cityBenchArtifact is the schema of BENCH_city.json. Top-level
// scalars are what scripts/benchdiff.sh gates on.
type cityBenchArtifact struct {
	Generated   time.Time `json:"generated"`
	GoMaxProcs  int       `json:"go_max_procs"`
	NumCPU      int       `json:"num_cpu"`
	GoVersion   string    `json:"go_version"`
	Description string    `json:"description"`

	CityAPs    int `json:"city_aps"`
	CityUEs    int `json:"city_ues"`
	CityEpochs int `json:"city_epochs"`
	// The headline gate: simulated seconds per wall second for the full
	// diurnal cycle, single-threaded. Must exceed 1.
	SimRealtimeFactor float64 `json:"sim_realtime_factor"`
	CityBuildMS       float64 `json:"city_build_ms"`
	CitySimWallMS     float64 `json:"city_sim_wall_ms"`
	CityAttachedMean  float64 `json:"city_attached_mean"`
	CityAttachedPeak  float64 `json:"city_attached_peak"`
	CityUEMbpsP50     float64 `json:"city_ue_mbps_p50"`
	CityHeapSysMB     float64 `json:"city_heap_sys_mb"`

	// GridQuery is one geo.Grid.AppendWithin over the metro AP field —
	// must be 0 allocs/op (the index query contract).
	GridQuery benchResult `json:"grid_query"`
	// MetroEpoch is one steady-state city epoch (~60k attached UEs).
	MetroEpoch benchResult `json:"metro_epoch"`
	// The O(N) vs O(neighborhood) contrast on the LTE SINR path at
	// 1000 cells, same world, same significance radius.
	LTESINRBruteN1000   benchResult `json:"lte_sinr_brute_n1000"`
	LTESINRIndexedN1000 benchResult `json:"lte_sinr_indexed_n1000"`
	LTEIndexedSpeedup   float64     `json:"lte_indexed_speedup"`
}

func benchCityGridQuery(b *testing.B) {
	cfg := metro.DefaultCity(1)
	rng := rand.New(rand.NewSource(7))
	area := geo.Rect{MinX: 0, MinY: 0, MaxX: cfg.AreaW, MaxY: cfg.AreaH}
	g := geo.NewGrid(area, cfg.RadiusM)
	pts := geo.MinSpacedPoints(rng, area, cfg.NAPs, cfg.APSpacingM)
	for i, p := range pts {
		g.Insert(int32(i), p)
	}
	probes := area.RandomPoints(rng, 1024)
	scratch := make([]int32, 0, 256)
	scratch = g.AppendWithin(scratch[:0], probes[0], cfg.RadiusM) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = g.AppendWithin(scratch[:0], probes[i&1023], cfg.RadiusM)
	}
	_ = scratch
}

func benchMetroEpochCity(b *testing.B) {
	cfg := metro.DefaultCity(1)
	w := metro.New(cfg)
	w.Run(cfg.DayEpochs / 2) // warm into the mid-day plateau
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
}

// cityLTEWorld builds the 1000-cell density-scaled world shared by the
// brute/indexed SINR benches.
func cityLTEWorld() (*lte.Environment, geo.Rect, []*lte.Cell, []*lte.Client) {
	const n = 1000
	rng := rand.New(rand.NewSource(42))
	area := geo.Square(300 * math.Sqrt(n))
	env := lte.NewEnvironment(42)
	cells := make([]*lte.Cell, n)
	for i := range cells {
		cells[i] = &lte.Cell{
			ID: i, Pos: area.RandomPoint(rng), TxPowerDBm: 30,
			BW: lte.BW5MHz, Activity: lte.FullBuffer,
		}
	}
	clients := make([]*lte.Client, 8)
	for i := range clients {
		clients[i] = &lte.Client{ID: n + i, Pos: area.RandomPoint(rng), TxPowerDBm: 20}
	}
	return env, area, cells, clients
}

func benchCityLTESINR(indexed bool) func(b *testing.B) {
	return func(b *testing.B) {
		env, area, cells, clients := cityLTEWorld()
		var nb *lte.Neighbors
		if indexed {
			nb = lte.NewNeighbors(cells, area, 650)
		} else {
			nb = lte.BruteNeighbors(cells, 650)
		}
		for ci, cl := range clients { // warm the rx memo
			for sc := 0; sc < lte.BW5MHz.Subchannels(); sc++ {
				env.DownlinkSINRNear(cells[ci%len(cells)], nb, cl, sc, 0)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cl := clients[i%len(clients)]
			env.DownlinkSINRNear(cells[i%len(cells)], nb, cl, i%4, 0)
		}
	}
}

// TestCityBenchArtifact regenerates BENCH_city.json when CITY_BENCH_OUT
// is set. Fails if the city is not faster than real time, if the grid
// query or steady-state metro epoch allocates, or if the indexed SINR
// path does not beat the brute scan at N=1000.
func TestCityBenchArtifact(t *testing.T) {
	out := os.Getenv("CITY_BENCH_OUT")
	if out == "" {
		t.Skip("set CITY_BENCH_OUT to write BENCH_city.json")
	}

	cfg := metro.DefaultCity(1)
	epochs := cfg.DayEpochs // one full diurnal cycle
	buildStart := time.Now()
	w := metro.New(cfg)
	buildWall := time.Since(buildStart)
	simStart := time.Now()
	w.Run(epochs)
	simWall := time.Since(simStart)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	art := cityBenchArtifact{
		Generated:  time.Now().UTC(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Description: fmt.Sprintf("City-scale single-world baseline: the examples/metro scenario "+
			"(%d APs, %d UEs, %.0f km², one %d-epoch diurnal cycle) driven single-threaded "+
			"through the geo.Grid interference index with SoA UE state and streaming stats. "+
			"sim_realtime_factor > 1 is the enforced scale gate; grid_query and metro_epoch "+
			"must stay 0 allocs/op; lte_sinr_indexed_n1000 must beat the brute truncated scan.",
			cfg.NAPs, cfg.NUEs, cfg.AreaW*cfg.AreaH/1e6, epochs),
		CityAPs:           cfg.NAPs,
		CityUEs:           cfg.NUEs,
		CityEpochs:        epochs,
		SimRealtimeFactor: float64(epochs) / simWall.Seconds(),
		CityBuildMS:       float64(buildWall) / float64(time.Millisecond),
		CitySimWallMS:     float64(simWall) / float64(time.Millisecond),
		CityAttachedMean:  w.Attached.Mean(),
		CityAttachedPeak:  w.Attached.Max(),
		CityUEMbpsP50:     w.ThroughputQ.Quantile(0.5),
		CityHeapSysMB:     float64(ms.HeapSys) / (1 << 20),

		GridQuery:           toResult(testing.Benchmark(benchCityGridQuery)),
		MetroEpoch:          toResult(testing.Benchmark(benchMetroEpochCity)),
		LTESINRBruteN1000:   toResult(testing.Benchmark(benchCityLTESINR(false))),
		LTESINRIndexedN1000: toResult(testing.Benchmark(benchCityLTESINR(true))),
	}
	if art.LTESINRIndexedN1000.NsPerOp > 0 {
		art.LTEIndexedSpeedup = art.LTESINRBruteN1000.NsPerOp / art.LTESINRIndexedN1000.NsPerOp
	}

	if art.SimRealtimeFactor <= 1 {
		t.Errorf("city simulates at %.2fx real time, want > 1x", art.SimRealtimeFactor)
	}
	if art.GridQuery.AllocsPerOp != 0 {
		t.Errorf("grid query allocates %d allocs/op, want 0", art.GridQuery.AllocsPerOp)
	}
	if art.MetroEpoch.AllocsPerOp != 0 {
		t.Errorf("steady-state metro epoch allocates %d allocs/op, want 0",
			art.MetroEpoch.AllocsPerOp)
	}
	if art.LTEIndexedSpeedup <= 1 {
		t.Errorf("indexed SINR at N=1000 is not faster than brute (%.2fx)", art.LTEIndexedSpeedup)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.1fx real time, grid query %.0f ns/op, indexed SINR %.1fx faster",
		out, art.SimRealtimeFactor, art.GridQuery.NsPerOp, art.LTEIndexedSpeedup)
}
