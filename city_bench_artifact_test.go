// BENCH_city.json writer: regenerates the committed city-scale
// baseline when CITY_BENCH_OUT is set (see `make BENCH_city.json`).
// It runs the examples/metro headline scenario — 2,000 APs, 100k UEs,
// one compressed diurnal cycle — single-threaded and enforces the
// scale contract: the city simulates at >= 40x real time, the metro
// epoch holds the 2.5x budget versus the pre-kernel-v2 baseline, the
// spatial-index query / epoch sweep / fade draw / CQI map are all
// allocation-free, the batched ziggurat fade draw is >= 4x faster than
// the v1 scalar draw it replaced, and the indexed SINR path beats the
// brute truncated scan at N=1000 APs.
package cellfi_test

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/metro"
	"cellfi/internal/phy"
	"cellfi/internal/propagation"
)

// cityBenchArtifact is the schema of BENCH_city.json. Top-level
// scalars are what scripts/benchdiff.sh gates on.
type cityBenchArtifact struct {
	Generated   time.Time `json:"generated"`
	GoMaxProcs  int       `json:"go_max_procs"`
	NumCPU      int       `json:"num_cpu"`
	GoVersion   string    `json:"go_version"`
	Description string    `json:"description"`

	CityAPs    int `json:"city_aps"`
	CityUEs    int `json:"city_ues"`
	CityEpochs int `json:"city_epochs"`
	// The headline gate: simulated seconds per wall second for the full
	// diurnal cycle, single-threaded. Must exceed 1.
	SimRealtimeFactor float64 `json:"sim_realtime_factor"`
	CityBuildMS       float64 `json:"city_build_ms"`
	CitySimWallMS     float64 `json:"city_sim_wall_ms"`
	CityAttachedMean  float64 `json:"city_attached_mean"`
	CityAttachedPeak  float64 `json:"city_attached_peak"`
	CityUEMbpsP50     float64 `json:"city_ue_mbps_p50"`
	CityHeapSysMB     float64 `json:"city_heap_sys_mb"`

	// GridQuery is one geo.Grid.AppendWithin over the metro AP field —
	// must be 0 allocs/op (the index query contract).
	GridQuery benchResult `json:"grid_query"`
	// MetroEpoch is one steady-state city epoch (~60k attached UEs).
	MetroEpoch benchResult `json:"metro_epoch"`
	// The O(N) vs O(neighborhood) contrast on the LTE SINR path at
	// 1000 cells, same world, same significance radius.
	LTESINRBruteN1000   benchResult `json:"lte_sinr_brute_n1000"`
	LTESINRIndexedN1000 benchResult `json:"lte_sinr_indexed_n1000"`
	LTEIndexedSpeedup   float64     `json:"lte_indexed_speedup"`

	// FadeDraw is one deterministic Exponential(1) fade gain through the
	// batched ziggurat kernel (AppendGainsLinear, amortized over 32-link
	// rows); FadeDrawV1 is the draw it replaced (full SplitMix64 chain
	// per draw + math.Log inversion), kept inline here as the reference.
	FadeDraw        benchResult `json:"fade_draw"`
	FadeDrawV1      benchResult `json:"fade_draw_v1"`
	FadeDrawSpeedup float64     `json:"fade_draw_speedup"`
	// CQILinear maps a linear SINR ratio straight onto the precomputed
	// linear CQI thresholds; CQILog10 is the 10*log10 chain it shortcuts.
	// The two are bit-identical in output (proved exhaustively in
	// internal/phy); the artifact records the speed contrast.
	CQILinear benchResult `json:"cqi_linear"`
	CQILog10  benchResult `json:"cqi_log10"`
}

func benchCityGridQuery(b *testing.B) {
	cfg := metro.DefaultCity(1)
	rng := rand.New(rand.NewSource(7))
	area := geo.Rect{MinX: 0, MinY: 0, MaxX: cfg.AreaW, MaxY: cfg.AreaH}
	g := geo.NewGrid(area, cfg.RadiusM)
	pts := geo.MinSpacedPoints(rng, area, cfg.NAPs, cfg.APSpacingM)
	for i, p := range pts {
		g.Insert(int32(i), p)
	}
	probes := area.RandomPoints(rng, 1024)
	scratch := make([]int32, 0, 256)
	scratch = g.AppendWithin(scratch[:0], probes[0], cfg.RadiusM) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = g.AppendWithin(scratch[:0], probes[i&1023], cfg.RadiusM)
	}
	_ = scratch
}

func benchMetroEpochCity(b *testing.B) {
	cfg := metro.DefaultCity(1)
	w := metro.New(cfg)
	w.Run(cfg.DayEpochs / 2) // warm into the mid-day plateau
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
}

func cityBenchLinks() []uint64 {
	links := make([]uint64, 1024)
	for i := range links {
		links[i] = propagation.LinkID(i%2000, 2000+i)
	}
	return links
}

// benchFadeDraw is one fade gain through the batch kernel, amortized
// over 32-link rows (the metro adjacency row width).
func benchFadeDraw(b *testing.B) {
	f := propagation.NewFading(1)
	links := cityBenchLinks()[:32]
	dst := make([]float64, 0, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 32 {
		dst = f.AppendGainsLinear(dst[:0], links, 3, 4200)
	}
	_ = dst
}

// benchFadeDrawV1 reproduces the pre-ziggurat draw verbatim — the full
// per-draw SplitMix64 chain over (seed, link, subchannel, block)
// followed by -log(u) inversion — as the reference the fade_draw
// speedup is measured against.
func benchFadeDrawV1(b *testing.B) {
	const seed, blockMS = 1, 100
	links := cityBenchLinks()
	v1 := func(linkID uint64, subchannel int, tMS int64) float64 {
		h := uint64(seed) ^ 0x9e3779b97f4a7c15
		for _, v := range [...]uint64{linkID, uint64(subchannel) + 0x5bd1e995, uint64(tMS / blockMS)} {
			h ^= v
			h *= 0xbf58476d1ce4e5b9
			h ^= h >> 27
			h *= 0x94d049bb133111eb
			h ^= h >> 31
		}
		u := (float64(h>>11) + 1) / (1 << 53)
		return -math.Log(u)
	}
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += v1(links[i&1023], 3, 4200)
	}
	_ = sink
}

// cityCQIRatios covers the operating range (-10..+28 dB) as linear
// ratios, shared by the CQI mapping benches.
func cityCQIRatios() []float64 {
	ratios := make([]float64, 256)
	for i := range ratios {
		db := -10 + 38*float64(i)/float64(len(ratios)-1)
		ratios[i] = math.Pow(10, db/10)
	}
	return ratios
}

func benchCQILog10(b *testing.B) {
	ratios := cityCQIRatios()
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += phy.LTECQIFromSINR(10 * math.Log10(ratios[i&255]))
	}
	_ = sink
}

func benchCQILinear(b *testing.B) {
	ratios := cityCQIRatios()
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += phy.LTECQIFromLinearSINR(ratios[i&255], 1)
	}
	_ = sink
}

// cityLTEWorld builds the 1000-cell density-scaled world shared by the
// brute/indexed SINR benches.
func cityLTEWorld() (*lte.Environment, geo.Rect, []*lte.Cell, []*lte.Client) {
	const n = 1000
	rng := rand.New(rand.NewSource(42))
	area := geo.Square(300 * math.Sqrt(n))
	env := lte.NewEnvironment(42)
	cells := make([]*lte.Cell, n)
	for i := range cells {
		cells[i] = &lte.Cell{
			ID: i, Pos: area.RandomPoint(rng), TxPowerDBm: 30,
			BW: lte.BW5MHz, Activity: lte.FullBuffer,
		}
	}
	clients := make([]*lte.Client, 8)
	for i := range clients {
		clients[i] = &lte.Client{ID: n + i, Pos: area.RandomPoint(rng), TxPowerDBm: 20}
	}
	return env, area, cells, clients
}

func benchCityLTESINR(indexed bool) func(b *testing.B) {
	return func(b *testing.B) {
		env, area, cells, clients := cityLTEWorld()
		var nb *lte.Neighbors
		if indexed {
			nb = lte.NewNeighbors(cells, area, 650)
		} else {
			nb = lte.BruteNeighbors(cells, 650)
		}
		for ci, cl := range clients { // warm the rx memo
			for sc := 0; sc < lte.BW5MHz.Subchannels(); sc++ {
				env.DownlinkSINRNear(cells[ci%len(cells)], nb, cl, sc, 0)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cl := clients[i%len(clients)]
			env.DownlinkSINRNear(cells[i%len(cells)], nb, cl, i%4, 0)
		}
	}
}

// TestCityBenchArtifact regenerates BENCH_city.json when CITY_BENCH_OUT
// is set. Fails if the city is not faster than real time, if the grid
// query or steady-state metro epoch allocates, or if the indexed SINR
// path does not beat the brute scan at N=1000.
func TestCityBenchArtifact(t *testing.T) {
	out := os.Getenv("CITY_BENCH_OUT")
	if out == "" {
		t.Skip("set CITY_BENCH_OUT to write BENCH_city.json")
	}

	cfg := metro.DefaultCity(1)
	epochs := cfg.DayEpochs // one full diurnal cycle
	buildStart := time.Now()
	w := metro.New(cfg)
	buildWall := time.Since(buildStart)
	simStart := time.Now()
	w.Run(epochs)
	simWall := time.Since(simStart)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	art := cityBenchArtifact{
		Generated:  time.Now().UTC(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Description: fmt.Sprintf("City-scale single-world baseline: the examples/metro scenario "+
			"(%d APs, %d UEs, %.0f km², one %d-epoch diurnal cycle) driven single-threaded "+
			"through the geo.Grid interference index with SoA UE state, the batched ziggurat "+
			"fading kernel (v2) and linear-domain CQI thresholds. sim_realtime_factor >= 40 and "+
			"metro_epoch <= 2.5x under the v1 baseline (80.88 ms/op) are the enforced scale "+
			"gates; grid_query, metro_epoch, fade_draw and cqi_linear must stay 0 allocs/op; "+
			"fade_draw must be >= 4x faster than the v1 reference draw (fade_draw_v1) and "+
			"lte_sinr_indexed_n1000 must beat the brute truncated scan.",
			cfg.NAPs, cfg.NUEs, cfg.AreaW*cfg.AreaH/1e6, epochs),
		CityAPs:           cfg.NAPs,
		CityUEs:           cfg.NUEs,
		CityEpochs:        epochs,
		SimRealtimeFactor: float64(epochs) / simWall.Seconds(),
		CityBuildMS:       float64(buildWall) / float64(time.Millisecond),
		CitySimWallMS:     float64(simWall) / float64(time.Millisecond),
		CityAttachedMean:  w.Attached.Mean(),
		CityAttachedPeak:  w.Attached.Max(),
		CityUEMbpsP50:     w.ThroughputQ.Quantile(0.5),
		CityHeapSysMB:     float64(ms.HeapSys) / (1 << 20),

		GridQuery:           toResult(testing.Benchmark(benchCityGridQuery)),
		MetroEpoch:          toResult(testing.Benchmark(benchMetroEpochCity)),
		LTESINRBruteN1000:   toResult(testing.Benchmark(benchCityLTESINR(false))),
		LTESINRIndexedN1000: toResult(testing.Benchmark(benchCityLTESINR(true))),
		FadeDraw:            toResult(testing.Benchmark(benchFadeDraw)),
		FadeDrawV1:          toResult(testing.Benchmark(benchFadeDrawV1)),
		CQILinear:           toResult(testing.Benchmark(benchCQILinear)),
		CQILog10:            toResult(testing.Benchmark(benchCQILog10)),
	}
	if art.LTESINRIndexedN1000.NsPerOp > 0 {
		art.LTEIndexedSpeedup = art.LTESINRBruteN1000.NsPerOp / art.LTESINRIndexedN1000.NsPerOp
	}
	if art.FadeDraw.NsPerOp > 0 {
		art.FadeDrawSpeedup = art.FadeDrawV1.NsPerOp / art.FadeDraw.NsPerOp
	}

	// The kernel-v2 scale floor: the fading/SINR rework holds a >= 40x
	// single-core realtime factor on the reference box. Before it the
	// committed artifact sat at 17x, so the floor also guards against
	// any silent fallback onto the scalar dB path.
	if art.SimRealtimeFactor < 40 {
		t.Errorf("city simulates at %.2fx real time, want >= 40x", art.SimRealtimeFactor)
	}
	// Absolute epoch budget: >= 2.5x faster than the pre-kernel-v2
	// committed baseline (80.88 ms/op on the same reference box).
	const metroEpochV1NsPerOp = 80881170.2
	if art.MetroEpoch.NsPerOp > metroEpochV1NsPerOp/2.5 {
		t.Errorf("metro epoch %.1f ms/op, want <= %.1f ms/op (2.5x of the v1 baseline)",
			art.MetroEpoch.NsPerOp/1e6, metroEpochV1NsPerOp/2.5/1e6)
	}
	if art.GridQuery.AllocsPerOp != 0 {
		t.Errorf("grid query allocates %d allocs/op, want 0", art.GridQuery.AllocsPerOp)
	}
	if art.MetroEpoch.AllocsPerOp != 0 {
		t.Errorf("steady-state metro epoch allocates %d allocs/op, want 0",
			art.MetroEpoch.AllocsPerOp)
	}
	if art.LTEIndexedSpeedup <= 1 {
		t.Errorf("indexed SINR at N=1000 is not faster than brute (%.2fx)", art.LTEIndexedSpeedup)
	}
	// 4x is the flake-proof floor; the kernel typically shows 5-6x on
	// the reference box (the committed artifact records the measured
	// ratio, and benchdiff.sh holds fade_draw to a >10% regression band).
	if art.FadeDrawSpeedup < 4 {
		t.Errorf("batched fade draw only %.2fx faster than the v1 draw, want >= 4x",
			art.FadeDrawSpeedup)
	}
	if art.FadeDraw.AllocsPerOp != 0 {
		t.Errorf("batched fade draw allocates %d allocs/op, want 0", art.FadeDraw.AllocsPerOp)
	}
	if art.CQILinear.AllocsPerOp != 0 {
		t.Errorf("linear CQI map allocates %d allocs/op, want 0", art.CQILinear.AllocsPerOp)
	}
	if art.CQILinear.NsPerOp >= art.CQILog10.NsPerOp {
		t.Errorf("linear CQI map (%.2f ns/op) not faster than the log10 chain (%.2f ns/op)",
			art.CQILinear.NsPerOp, art.CQILog10.NsPerOp)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.1fx real time, grid query %.0f ns/op, indexed SINR %.1fx faster",
		out, art.SimRealtimeFactor, art.GridQuery.NsPerOp, art.LTEIndexedSpeedup)
}
