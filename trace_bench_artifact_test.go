// BENCH_trace.json writer: regenerates the committed flight-recorder
// overhead baseline when TRACE_BENCH_OUT is set (see `make
// BENCH_trace.json`). It measures the instrumented hot loops with the
// recorder off (nil — the default) and on (a live Ring), enforcing the
// zero-cost contract from internal/trace: the sim event loop stays
// 0 allocs/op in both modes, and the protocol loops add no allocations
// when tracing turns on.
package cellfi_test

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"cellfi/internal/geo"
	"cellfi/internal/lte"
	"cellfi/internal/propagation"
	"cellfi/internal/sim"
	"cellfi/internal/trace"
	"cellfi/internal/wifi"
)

// traceBenchArtifact is the schema of BENCH_trace.json: each
// instrumented loop appears twice (recorder off / on) with the relative
// ns/op overhead, plus the recorder's own record/encode/decode costs.
type traceBenchArtifact struct {
	Generated   time.Time `json:"generated"`
	GoMaxProcs  int       `json:"go_max_procs"`
	NumCPU      int       `json:"num_cpu"`
	GoVersion   string    `json:"go_version"`
	Description string    `json:"description"`

	// The sim event loop (the repo's hottest path) with tracing off
	// and on. Both must be 0 allocs/op; the off path must keep the
	// engine's >= 2x speedup floor vs the pre-rewrite baseline.
	ScheduleFireOff         benchResult `json:"schedule_fire_recorder_off"`
	ScheduleFireOn          benchResult `json:"schedule_fire_recorder_on"`
	ScheduleFireOverheadPct float64     `json:"schedule_fire_overhead_pct"`

	// The Wi-Fi CSMA and LTE subframe loops (one op = 1 ms / one
	// subframe of virtual time). Tracing on must add zero allocations
	// over the off path.
	CSMASlotLoopOff benchResult `json:"csma_slot_loop_recorder_off"`
	CSMASlotLoopOn  benchResult `json:"csma_slot_loop_recorder_on"`
	CSMAOverheadPct float64     `json:"csma_slot_loop_overhead_pct"`
	LTESubframeOff  benchResult `json:"lte_subframe_recorder_off"`
	LTESubframeOn   benchResult `json:"lte_subframe_recorder_on"`
	LTESubframePct  float64     `json:"lte_subframe_overhead_pct"`

	// Recorder internals: one Record into a wrap-mode ring, one Record
	// into a spilling ring (amortized encode+write), one record encoded
	// and one decoded.
	RingRecordWrap  benchResult `json:"ring_record_wrap"`
	RingRecordSpill benchResult `json:"ring_record_spill"`
	EncodeRecord    benchResult `json:"encode_record"`
	DecodeRecord    benchResult `json:"decode_record"`
}

// benchScheduleFireRec mirrors benchScheduleFire with an optional live
// wrap-mode ring attached to the engine.
func benchScheduleFireRec(traced bool) func(b *testing.B) {
	return func(b *testing.B) {
		e := sim.NewEngine(1)
		if traced {
			e.SetRecorder(trace.NewRing(0))
		}
		fired := 0
		var tick func()
		tick = func() {
			fired++
			if fired < b.N {
				e.After(time.Microsecond, tick)
			}
		}
		e.After(0, tick)
		b.ReportAllocs()
		b.ResetTimer()
		e.RunAll()
	}
}

// benchCSMARec mirrors benchCSMASlotLoop with optional tracing.
func benchCSMARec(traced bool) func(b *testing.B) {
	return func(b *testing.B) {
		eng := sim.NewEngine(1)
		if traced {
			eng.SetRecorder(trace.NewRing(0))
		}
		model := propagation.DefaultUrban(1)
		model.ShadowSigmaDB = 0
		n := wifi.NewNetwork(eng, model, wifi.Params11af())
		for i := 0; i < 2; i++ {
			ap := n.AddAP(i, geo.Point{X: float64(i) * 120}, 20)
			for c := 0; c < 2; c++ {
				cl := n.AddClient(100+10*i+c, geo.Point{X: float64(i)*120 + 30 + float64(c)*10}, 20, ap)
				ap.Enqueue(cl, 1<<40)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		horizon := sim.Time(0)
		for i := 0; i < b.N; i++ {
			horizon += time.Millisecond
			eng.Run(horizon)
		}
	}
}

// benchLTERec mirrors benchLTESubframe with optional tracing.
func benchLTERec(traced bool) func(b *testing.B) {
	return func(b *testing.B) {
		eng := sim.NewEngine(1)
		if traced {
			eng.SetRecorder(trace.NewRing(0))
		}
		env := lte.NewEnvironment(1)
		cell := &lte.Cell{
			ID: 1, TxPowerDBm: 30,
			BW: lte.BW5MHz, TDD: lte.TDDConfig4, Activity: lte.FullBuffer,
		}
		interferer := &lte.Cell{
			ID: 2, Pos: geo.Point{X: 900}, TxPowerDBm: 30,
			BW: lte.BW5MHz, TDD: lte.TDDConfig4, Activity: lte.FullBuffer,
		}
		var clients []*lte.Client
		for i, d := range []float64{100, 250, 400, 600} {
			clients = append(clients, &lte.Client{ID: 100 + i, Pos: geo.Point{X: d}, TxPowerDBm: 20})
		}
		cs := lte.NewCellSim(eng, env, cell, clients)
		cs.Interferers = []*lte.Cell{interferer}
		cs.Start()
		for _, cl := range clients {
			cs.Backlog(cl.ID, 1<<40)
		}
		b.ReportAllocs()
		b.ResetTimer()
		horizon := sim.Time(0)
		for i := 0; i < b.N; i++ {
			horizon += lte.SubframeDuration
			eng.Run(horizon)
		}
	}
}

func benchRingRecord(spill bool) func(b *testing.B) {
	return func(b *testing.B) {
		r := trace.NewRing(0)
		if spill {
			r.SpillTo(io.Discard)
		}
		rec := trace.Record{T: 1, AP: 3, Kind: trace.KindIMHop,
			N: 3, Args: [trace.MaxArgs]int64{2, 5, trace.HopCauseBucket}}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.T += 1000
			r.Record(rec)
		}
	}
}

func benchEncodeRecord(b *testing.B) {
	var enc trace.Encoder
	enc.AppendHeader()
	rec := trace.Record{T: 1, AP: 3, Kind: trace.KindIMHop,
		N: 3, Args: [trace.MaxArgs]int64{2, 5, trace.HopCauseBucket}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.T += 1000
		enc.Append(rec)
		if len(enc.Bytes()) > 1<<20 {
			enc.ResetBuf()
		}
	}
}

func benchDecodeRecord(b *testing.B) {
	recs := make([]trace.Record, 4096)
	for i := range recs {
		recs[i] = trace.Record{T: int64(i) * 1000, AP: int32(i % 16), Kind: trace.KindIMShare,
			N: 3, Args: [trace.MaxArgs]int64{4, 0x2f, 5}}
	}
	data := trace.Marshal(recs)
	b.ReportAllocs()
	b.ResetTimer()
	var d *trace.Decoder
	for i := 0; i < b.N; i++ {
		if d == nil || d.Count() == len(recs) {
			d, _ = trace.NewDecoder(data)
		}
		if _, err := d.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func overheadPct(off, on benchResult) float64 {
	if off.NsPerOp <= 0 {
		return 0
	}
	return (on.NsPerOp - off.NsPerOp) / off.NsPerOp * 100
}

// TestTraceBenchArtifact regenerates BENCH_trace.json when
// TRACE_BENCH_OUT is set. It fails if the sim event loop allocates in
// either recorder mode, if turning tracing on adds allocations to the
// CSMA or LTE loops, or if the recorder-off event loop loses the
// engine's 2x-vs-baseline dispatch floor (i.e. the nil-recorder branch
// is not free enough).
func TestTraceBenchArtifact(t *testing.T) {
	out := os.Getenv("TRACE_BENCH_OUT")
	if out == "" {
		t.Skip("set TRACE_BENCH_OUT to write BENCH_trace.json")
	}

	art := traceBenchArtifact{
		Generated:  time.Now().UTC(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Description: "Flight-recorder (internal/trace) overhead baseline. Each instrumented " +
			"hot loop is measured with the recorder off (nil — one predicted branch per " +
			"emit site) and on (a live wrap-mode Ring). The zero-cost contract: " +
			"schedule_fire stays 0 allocs/op in both modes, and tracing adds zero " +
			"allocations to the CSMA slot loop and the LTE subframe loop. Overhead " +
			"percentages are informational (single-run, noisy on shared hardware); the " +
			"alloc counts and the 2x dispatch floor are the enforced invariants. " +
			"ring_record_* / encode_record / decode_record cost one record through the " +
			"recorder, the varint+delta encoder and the decoder respectively.",
		ScheduleFireOff: toResult(testing.Benchmark(benchScheduleFireRec(false))),
		ScheduleFireOn:  toResult(testing.Benchmark(benchScheduleFireRec(true))),
		CSMASlotLoopOff: toResult(testing.Benchmark(benchCSMARec(false))),
		CSMASlotLoopOn:  toResult(testing.Benchmark(benchCSMARec(true))),
		LTESubframeOff:  toResult(testing.Benchmark(benchLTERec(false))),
		LTESubframeOn:   toResult(testing.Benchmark(benchLTERec(true))),
		RingRecordWrap:  toResult(testing.Benchmark(benchRingRecord(false))),
		RingRecordSpill: toResult(testing.Benchmark(benchRingRecord(true))),
		EncodeRecord:    toResult(testing.Benchmark(benchEncodeRecord)),
		DecodeRecord:    toResult(testing.Benchmark(benchDecodeRecord)),
	}
	art.ScheduleFireOverheadPct = overheadPct(art.ScheduleFireOff, art.ScheduleFireOn)
	art.CSMAOverheadPct = overheadPct(art.CSMASlotLoopOff, art.CSMASlotLoopOn)
	art.LTESubframePct = overheadPct(art.LTESubframeOff, art.LTESubframeOn)

	if art.ScheduleFireOff.AllocsPerOp != 0 {
		t.Errorf("schedule+fire with recorder off allocates %d allocs/op, want 0",
			art.ScheduleFireOff.AllocsPerOp)
	}
	if art.ScheduleFireOn.AllocsPerOp != 0 {
		t.Errorf("schedule+fire with recorder ON allocates %d allocs/op, want 0",
			art.ScheduleFireOn.AllocsPerOp)
	}
	if art.CSMASlotLoopOn.AllocsPerOp > art.CSMASlotLoopOff.AllocsPerOp {
		t.Errorf("tracing adds allocs to the CSMA loop: %d -> %d allocs/op",
			art.CSMASlotLoopOff.AllocsPerOp, art.CSMASlotLoopOn.AllocsPerOp)
	}
	if art.LTESubframeOn.AllocsPerOp > art.LTESubframeOff.AllocsPerOp {
		t.Errorf("tracing adds allocs to the LTE subframe loop: %d -> %d allocs/op",
			art.LTESubframeOff.AllocsPerOp, art.LTESubframeOn.AllocsPerOp)
	}
	if art.RingRecordWrap.AllocsPerOp != 0 || art.RingRecordSpill.AllocsPerOp != 0 {
		t.Errorf("ring record path allocates (wrap=%d, spill=%d allocs/op), want 0",
			art.RingRecordWrap.AllocsPerOp, art.RingRecordSpill.AllocsPerOp)
	}
	if off := art.ScheduleFireOff.EventsPerSec; off < 2*baselineEventsPerSec {
		t.Errorf("recorder-off dispatch %.0f events/sec is %.2fx pre-rewrite baseline, want >= 2x",
			off, off/baselineEventsPerSec)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: event loop %.1f -> %.1f ns/op (%.1f%% overhead traced, 0 allocs both)",
		out, art.ScheduleFireOff.NsPerOp, art.ScheduleFireOn.NsPerOp, art.ScheduleFireOverheadPct)
}
