// BENCH_shard.json writer: regenerates the committed sharded-execution
// baseline when SHARD_BENCH_OUT is set (see `make BENCH_shard.json`).
// It drives the examples/metro city through the conservative shard
// cluster at K in {1, 2, 4, 8} — skipping counts above the machine's
// usable cores, which would time oversubscription stall rather than
// sharding (skipped_shard_counts records them) — and records wall time,
// realtime factor, UE-sweep throughput, per-shard utilization and
// barrier stall. Gates: the lockstep barrier path must be 0 allocs/op
// in steady state, the integer epoch telemetry must agree across
// measured shard counts, and — only on a machine with >= 8 cores
// available — K=8 must be >= 3x faster than K=1.
package cellfi_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"cellfi/internal/metro"
	"cellfi/internal/shard"
	"cellfi/internal/sim"
)

// shardRunResult is one (shard count, world) measurement.
type shardRunResult struct {
	Shards int `json:"shards"`
	// WallMS is the simulation wall time (world build excluded).
	WallMS float64 `json:"wall_ms"`
	// SimRealtimeFactor is simulated seconds per wall second (epochs
	// are 1 s of virtual time).
	SimRealtimeFactor float64 `json:"sim_realtime_factor"`
	// UESweepsPerSec is NUEs * epochs / wall — per-UE epoch updates per
	// second, the throughput metric that is comparable across K.
	UESweepsPerSec float64 `json:"ue_sweeps_per_sec"`
	// AttachedMean is the run's mean attached count — identical across
	// K by the determinism contract; the artifact test enforces it.
	AttachedMean float64 `json:"attached_mean"`
	// Cluster telemetry (absent at K=1, which runs the direct path).
	Windows            int64     `json:"windows,omitempty"`
	Utilization        []float64 `json:"utilization,omitempty"`
	BarrierStallMS     float64   `json:"barrier_stall_ms,omitempty"`
	CrossShardMessages int64     `json:"cross_shard_messages,omitempty"`
}

// shardBenchArtifact is the schema of BENCH_shard.json. Top-level
// scalars are what scripts/benchdiff.sh gates on.
type shardBenchArtifact struct {
	Generated   time.Time `json:"generated"`
	GoMaxProcs  int       `json:"go_max_procs"`
	NumCPU      int       `json:"num_cpu"`
	GoVersion   string    `json:"go_version"`
	Description string    `json:"description"`

	CityAPs    int `json:"city_aps"`
	CityUEs    int `json:"city_ues"`
	CityEpochs int `json:"city_epochs"`

	Runs []shardRunResult `json:"runs"`
	// SkippedShardCounts lists the K values not measured because the
	// machine has fewer cores than shards: timing K=8 on a 1-core box
	// measures barrier stall, not parallel speedup (an earlier committed
	// artifact showed K=8 slower than K=2 with 20 s of stall — pure
	// oversubscription noise). benchdiff.sh ignores wall-time rows for
	// skipped counts.
	SkippedShardCounts []int `json:"skipped_shard_counts,omitempty"`
	// SpeedupK8 is wall(K=1) / wall(K=8); zero when K=8 was skipped.
	// SpeedupGateEnforced records whether the >= 3x floor applied on
	// this machine (it needs >= 8 cores; benchdiff.sh makes the same
	// check before gating).
	SpeedupK8           float64 `json:"speedup_k8"`
	SpeedupGateEnforced bool    `json:"speedup_gate_enforced"`

	// WindowBarrier is one conservative lockstep window at K=4 with
	// cross-shard messages in flight — must be 0 allocs/op.
	WindowBarrier benchResult `json:"window_barrier"`
}

// benchShardWindowBarrier mirrors internal/shard's BenchmarkWindowBarrier
// through the public API: a 4-shard ring exchanging commutative deltas,
// one op = one window (deliver, parallel dispatch, harvest, fold).
func benchShardWindowBarrier(b *testing.B) {
	const win = 250 * time.Millisecond
	const cells = 64
	state := make([]int64, cells)
	owner := func(cell int) int { return cell * 4 / cells }
	c := shard.New(shard.Config{
		Shards: 4,
		Window: win,
		Seed:   1,
		Handler: func(dst int, m shard.Msg) {
			state[m.Args[0]] += m.Args[1]
		},
	})
	defer c.Close()
	for s := 0; s < 4; s++ {
		s := s
		c.Shard(s).Engine.Every(win, func() {
			sh := c.Shard(s)
			at := sh.Engine.Now() + win
			for i := range state {
				if owner(i) != s {
					continue
				}
				next := (i + 1) % cells
				sh.Send(shard.Msg{At: at, Dst: int32(owner(next)), Kind: 1,
					Args: [4]int64{int64(next), state[i]%11 + 1}})
			}
		})
	}
	c.Run(8 * win) // warm buffers to the workload's high-water mark
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Run(c.Now() + win)
	}
	_ = sim.Time(0)
}

// runShardCity builds and runs the metro city at the given shard count,
// returning its measurement.
func runShardCity(cfg metro.Config, epochs, shards int) shardRunResult {
	cfg.Shards = shards
	w := metro.New(cfg)
	defer w.Close()
	start := time.Now()
	w.Run(epochs)
	wall := time.Since(start)
	res := shardRunResult{
		Shards:            shards,
		WallMS:            float64(wall) / float64(time.Millisecond),
		SimRealtimeFactor: float64(epochs) / wall.Seconds(),
		UESweepsPerSec:    float64(cfg.NUEs) * float64(epochs) / wall.Seconds(),
		AttachedMean:      w.Attached.Mean(),
	}
	if st, ok := w.ShardStats(); ok {
		res.Windows = st.Windows
		res.Utilization = st.Utilization()
		res.BarrierStallMS = st.BarrierStallMS()
		res.CrossShardMessages = st.Msgs
	}
	return res
}

// TestShardBenchArtifact regenerates BENCH_shard.json when
// SHARD_BENCH_OUT is set. Always fails if the barrier path allocates or
// the attached-count telemetry diverges across shard counts; fails the
// 3x-at-8 floor only when the machine has the cores to show it.
func TestShardBenchArtifact(t *testing.T) {
	out := os.Getenv("SHARD_BENCH_OUT")
	if out == "" {
		t.Skip("set SHARD_BENCH_OUT to write BENCH_shard.json")
	}

	cfg := metro.DefaultCity(1)
	epochs := 60 // a quarter of the diurnal cycle covers ramp-up and plateau

	art := shardBenchArtifact{
		Generated:  time.Now().UTC(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Description: fmt.Sprintf("Sharded-execution baseline: the examples/metro city "+
			"(%d APs, %d UEs, %d epochs) run on the conservative shard cluster at "+
			"K in {1, 2, 4, 8}, skipping counts above the machine's usable cores "+
			"(skipped_shard_counts). speedup_k8 is wall(K=1)/wall(K=8), gated at >= 3x "+
			"only when the machine has >= 8 cores (speedup_gate_enforced records whether "+
			"it applied); window_barrier must stay 0 allocs/op; attached_mean must be "+
			"identical at every measured K (the cross-shard determinism contract).",
			cfg.NAPs, cfg.NUEs, epochs),
		CityAPs:    cfg.NAPs,
		CityUEs:    cfg.NUEs,
		CityEpochs: epochs,
	}

	cores := art.NumCPU
	if art.GoMaxProcs < cores {
		cores = art.GoMaxProcs
	}
	var wallK8 float64
	for _, k := range []int{1, 2, 4, 8} {
		if k > cores && k > 1 {
			// Oversubscribed: the wall time would measure barrier stall
			// on a shared core, not sharded execution. Record the skip
			// so benchdiff.sh knows the row is absent by design.
			art.SkippedShardCounts = append(art.SkippedShardCounts, k)
			t.Logf("K=%d: skipped (machine has %d usable cores)", k, cores)
			continue
		}
		res := runShardCity(cfg, epochs, k)
		art.Runs = append(art.Runs, res)
		if k == 8 {
			wallK8 = res.WallMS
		}
		t.Logf("K=%d: %.0f ms, %.1fx real time, %.2g UE-sweeps/s",
			k, res.WallMS, res.SimRealtimeFactor, res.UESweepsPerSec)
	}
	for _, res := range art.Runs[1:] {
		if res.AttachedMean != art.Runs[0].AttachedMean {
			t.Errorf("K=%d attached_mean %v differs from K=1's %v — determinism broken",
				res.Shards, res.AttachedMean, art.Runs[0].AttachedMean)
		}
	}
	if wallK8 > 0 {
		art.SpeedupK8 = art.Runs[0].WallMS / wallK8
	}
	art.SpeedupGateEnforced = art.NumCPU >= 8 && art.GoMaxProcs >= 8
	if art.SpeedupGateEnforced && art.SpeedupK8 < 3 {
		t.Errorf("K=8 speedup %.2fx on a %d-core machine, want >= 3x",
			art.SpeedupK8, art.NumCPU)
	}

	art.WindowBarrier = toResult(testing.Benchmark(benchShardWindowBarrier))
	if art.WindowBarrier.AllocsPerOp != 0 {
		t.Errorf("window barrier allocates %d allocs/op, want 0", art.WindowBarrier.AllocsPerOp)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: speedup_k8 %.2fx (gate %v), barrier %.0f ns/op",
		out, art.SpeedupK8, art.SpeedupGateEnforced, art.WindowBarrier.NsPerOp)
}
